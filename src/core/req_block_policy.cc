#include "core/req_block_policy.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

ReqBlockPolicy::ReqBlockPolicy(ReqBlockOptions options) : opt_(options) {
  REQB_CHECK_MSG(opt_.delta >= 1, "delta must be at least one page");
}

ReqBlockPolicy::BlockList& ReqBlockPolicy::list_for(ReqList level) {
  return lists_[static_cast<std::size_t>(level)];
}

ReqBlock* ReqBlockPolicy::create_block(std::uint64_t req_id, ReqList level,
                                       std::uint64_t origin_id) {
  auto blk = std::make_unique<ReqBlock>();
  blk->block_id = next_block_id_++;
  blk->req_id = req_id;
  blk->level = level;
  blk->access_cnt = 1;
  blk->insert_tick = tick_;
  blk->origin_id = origin_id;
  ReqBlock* raw = blk.get();
  blocks_.emplace(raw->block_id, std::move(blk));
  list_for(level).push_front(raw);
  return raw;
}

void ReqBlockPolicy::move_block(ReqBlock* blk, ReqList level) {
  list_for(blk->level).erase(blk);
  blk->level = level;
  list_for(level).push_front(blk);
}

void ReqBlockPolicy::destroy_block(ReqBlock* blk) {
  REQB_DCHECK(blk->pages.empty());
  const std::uint64_t id = blk->block_id;
  blocks_.erase(id);
}

void ReqBlockPolicy::consume_block(ReqBlock* blk, std::vector<Lpn>& out) {
  for (const Lpn lpn : blk->pages) {
    const auto erased = page_to_block_.erase(lpn);
    REQB_DCHECK(erased == 1);
    (void)erased;
    out.push_back(lpn);
  }
  blk->pages.clear();
  list_for(blk->level).erase(blk);
  destroy_block(blk);
}

bool ReqBlockPolicy::guarded(const ReqBlock* blk) const {
  return blk->block_id == guard_insert_block_ ||
         blk->block_id == guard_split_block_;
}

void ReqBlockPolicy::begin_request(const IoRequest& req) {
  if (req.id != current_req_id_) {
    current_req_id_ = req.id;
    guard_insert_block_ = 0;
    guard_split_block_ = 0;
  }
}

void ReqBlockPolicy::on_insert(Lpn lpn, const IoRequest& req, bool) {
  ++tick_;
  ++mutations_;
  REQB_DCHECK(!page_to_block_.contains(lpn));
  // create_req_blk(IRL, R): reuse the request's block at the IRL head.
  ReqBlock* target = nullptr;
  if (guard_insert_block_ != 0) {
    const auto it = blocks_.find(guard_insert_block_);
    if (it != blocks_.end() && it->second->req_id == req.id) {
      target = it->second.get();
    }
  }
  if (target == nullptr) {
    target = create_block(req.id, ReqList::kIRL, /*origin_id=*/0);
    guard_insert_block_ = target->block_id;
  }
  target->pages.push_back(lpn);
  page_to_block_.emplace(lpn, target);
}

void ReqBlockPolicy::on_hit(Lpn lpn, const IoRequest& req, bool) {
  ++tick_;
  ++mutations_;
  const auto it = page_to_block_.find(lpn);
  REQB_CHECK_MSG(it != page_to_block_.end(),
                 "Req-block hit on untracked page");
  ReqBlock* blk = it->second;

  if (blk->page_count() <= opt_.delta) {
    // Small request block: promote to the Small Request List head.
    ++blk->access_cnt;
    move_block(blk, ReqList::kSRL);
    if (trace_ != nullptr) {
      trace_->emit({trace_->time(), 0, lpn, blk->page_count(),
                    EventKind::kReqBlockPromote, kTrackSrl, 0});
    }
    return;
  }

  // Large request block: split the hit page into the request's block at
  // the DRL head (creating it on the first split of this request).
  const bool removed = blk->remove_page(lpn);
  REQB_DCHECK(removed);
  (void)removed;

  ReqBlock* target = nullptr;
  if (guard_split_block_ != 0) {
    const auto sit = blocks_.find(guard_split_block_);
    if (sit != blocks_.end() && sit->second->req_id == req.id) {
      target = sit->second.get();
    }
  }
  if (target == nullptr) {
    target = create_block(req.id, ReqList::kDRL, blk->block_id);
    guard_split_block_ = target->block_id;
  }
  REQB_DCHECK(target != blk);
  target->pages.push_back(lpn);
  it->second = target;
  if (trace_ != nullptr) {
    trace_->emit({trace_->time(), 0, lpn, blk->page_count(),
                  EventKind::kReqBlockSplit, kTrackDrl, 0});
  }

  if (blk->pages.empty()) {
    list_for(blk->level).erase(blk);
    destroy_block(blk);
  }
}

VictimBatch ReqBlockPolicy::select_victim() {
  // get_victim(): compare Eq. 1 over the three list tails, skipping the
  // in-flight request's blocks. Deterministic tie-break: IRL, DRL, SRL.
  const ReqList order[] = {ReqList::kIRL, ReqList::kDRL, ReqList::kSRL};
  ReqBlock* victim = nullptr;
  double best = std::numeric_limits<double>::infinity();
  for (const ReqList level : order) {
    BlockList& list = list_for(level);
    ReqBlock* cand = list.tail();
    while (cand != nullptr && guarded(cand)) cand = list.prev(cand);
    if (cand == nullptr) continue;
    const double f = req_block_freq(*cand, tick_, opt_.freq_mode);
    // A just-inserted tail (age 0) scores +inf; it must still be
    // evictable — the power-loss drain selects until the cache is empty,
    // where such a block can be the only candidate left.
    if (victim == nullptr || f < best) {
      best = f;
      victim = cand;
    }
  }

  VictimBatch batch;
  if (victim == nullptr) return batch;

  // Downgraded merging (Fig. 6): a split victim drags its origin block out
  // of IRL so the request is evicted as one spatially-contiguous batch.
  ReqBlock* origin = nullptr;
  if (opt_.merge_on_evict && victim->origin_id != 0) {
    const auto it = blocks_.find(victim->origin_id);
    if (it != blocks_.end() && it->second->level == ReqList::kIRL &&
        !guarded(it->second.get())) {
      origin = it->second.get();
    }
  }
  ++mutations_;
  const auto victim_track =
      static_cast<std::uint16_t>(static_cast<std::size_t>(victim->level) + 1);
  const Lpn first_lpn = victim->pages.empty() ? 0 : victim->pages.front();
  consume_block(victim, batch.pages);
  if (origin != nullptr) {
    const std::uint64_t before = batch.pages.size();
    consume_block(origin, batch.pages);
    if (trace_ != nullptr) {
      trace_->emit({trace_->time(), 0, first_lpn,
                    batch.pages.size() - before, EventKind::kReqBlockMerge,
                    kTrackIrl, 0});
    }
  }
  if (trace_ != nullptr) {
    trace_->emit({trace_->time(), 0, first_lpn, batch.pages.size(),
                  EventKind::kReqBlockBatchEvict, victim_track, 0});
  }
  batch.colocate = opt_.colocate_flush;
  return batch;
}

ListOccupancy ReqBlockPolicy::occupancy() const {
  ListOccupancy occ;
  lists_[0].for_each([&](ReqBlock* b) {
    occ.irl_pages += b->page_count();
    ++occ.irl_blocks;
  });
  lists_[1].for_each([&](ReqBlock* b) {
    occ.srl_pages += b->page_count();
    ++occ.srl_blocks;
  });
  lists_[2].for_each([&](ReqBlock* b) {
    occ.drl_pages += b->page_count();
    ++occ.drl_blocks;
  });
  return occ;
}

const ListOccupancy& ReqBlockPolicy::occupancy_memo() const {
  if (occ_memo_mutations_ != mutations_) {
    occ_memo_ = occupancy();
    occ_memo_mutations_ = mutations_;
  }
  return occ_memo_;
}

void ReqBlockPolicy::set_trace(TraceBuffer* trace) {
  trace_ = trace != nullptr && trace->enabled(EventCategory::kCache)
               ? trace
               : nullptr;
}

void ReqBlockPolicy::register_metrics(MetricsRegistry& registry) const {
  WriteBufferPolicy::register_metrics(registry);
  registry.register_gauge("policy.blocks", [this] {
    return static_cast<double>(blocks_.size());
  });
  registry.register_gauge("list.irl_pages", [this] {
    return static_cast<double>(occupancy_memo().irl_pages);
  });
  registry.register_gauge("list.srl_pages", [this] {
    return static_cast<double>(occupancy_memo().srl_pages);
  });
  registry.register_gauge("list.drl_pages", [this] {
    return static_cast<double>(occupancy_memo().drl_pages);
  });
  registry.register_gauge("list.irl_blocks", [this] {
    return static_cast<double>(occupancy_memo().irl_blocks);
  });
  registry.register_gauge("list.srl_blocks", [this] {
    return static_cast<double>(occupancy_memo().srl_blocks);
  });
  registry.register_gauge("list.drl_blocks", [this] {
    return static_cast<double>(occupancy_memo().drl_blocks);
  });
}

const ReqBlock* ReqBlockPolicy::block_of(Lpn lpn) const {
  const auto it = page_to_block_.find(lpn);
  return it == page_to_block_.end() ? nullptr : it->second;
}

const ReqBlock* ReqBlockPolicy::tail_of(ReqList list) const {
  return lists_[static_cast<std::size_t>(list)].tail();
}

const ReqBlock* ReqBlockPolicy::prev_in_list(const ReqBlock* blk) const {
  return lists_[static_cast<std::size_t>(blk->level)].prev(
      const_cast<ReqBlock*>(blk));
}

ReqBlock* ReqBlockPolicy::mutable_block_for_tests(Lpn lpn) {
  const auto it = page_to_block_.find(lpn);
  return it == page_to_block_.end() ? nullptr : it->second;
}

bool ReqBlockPolicy::enumerate_pages(
    const std::function<void(Lpn)>& fn) const {
  for (const auto& [lpn, blk] : page_to_block_) fn(lpn);
  return true;
}

std::string ReqBlockPolicy::dump_structure() const {
  std::ostringstream os;
  os << "Req-block state: tick=" << tick_ << " delta=" << opt_.delta
     << " blocks=" << blocks_.size() << " pages=" << page_to_block_.size()
     << " guards(insert=" << guard_insert_block_
     << ", split=" << guard_split_block_ << ", req=" << current_req_id_
     << ")\n";
  const ReqList order[] = {ReqList::kIRL, ReqList::kSRL, ReqList::kDRL};
  for (const ReqList level : order) {
    os << "  " << to_string(level) << " (head→tail):";
    lists_[static_cast<std::size_t>(level)].for_each([&](ReqBlock* b) {
      os << " [id=" << b->block_id << " req=" << b->req_id
         << " pages=" << b->page_count() << " acc=" << b->access_cnt
         << " t=" << b->insert_tick << " origin=" << b->origin_id << "]";
    });
    os << "\n";
  }
  return os.str();
}

void ReqBlockPolicy::audit(AuditReport& report) const {
  report.attach_dump([this] { return dump_structure(); });
  REQB_AUDIT(report, opt_.delta >= 1);

  // Pass 1 — the three lists: structure, level tags, and that no block
  // appears on two lists (or twice on one).
  std::unordered_set<std::uint64_t> on_lists;
  std::size_t listed = 0;
  const ReqList order[] = {ReqList::kIRL, ReqList::kSRL, ReqList::kDRL};
  for (const ReqList level : order) {
    const BlockList& list = lists_[static_cast<std::size_t>(level)];
    REQB_AUDIT_MSG(report, list.validate(),
                   std::string("corrupt ") + to_string(level) + " chain");
    list.for_each([&](ReqBlock* b) {
      ++listed;
      REQB_AUDIT_MSG(report, b->level == level,
                     "block " + std::to_string(b->block_id) + " on " +
                         to_string(level) + " but tagged " +
                         to_string(b->level));
      const bool newly_listed = on_lists.insert(b->block_id).second;
      REQB_AUDIT_MSG(report, newly_listed,
                     "block " + std::to_string(b->block_id) +
                         " linked on two lists");
      const auto it = blocks_.find(b->block_id);
      REQB_AUDIT_MSG(report, it != blocks_.end() && it->second.get() == b,
                     "block " + std::to_string(b->block_id) +
                         " linked but not owned by the block table");
    });
  }
  REQB_AUDIT_MSG(report, listed == blocks_.size(),
                 "lists link " + std::to_string(listed) +
                     " blocks, table owns " + std::to_string(blocks_.size()));

  // Pass 2 — every owned block: page-table cross-consistency, Eq. 1
  // counter bounds, δ-membership per list, origin backpointers.
  std::size_t block_pages = 0;
  for (const auto& [id, owned] : blocks_) {
    const ReqBlock* b = owned.get();
    const std::string tag = "block " + std::to_string(id);
    REQB_AUDIT_MSG(report, b->block_id == id,
                   tag + " keyed under " + std::to_string(id) + " but holds " +
                       std::to_string(b->block_id));
    REQB_AUDIT_MSG(report, id < next_block_id_,
                   tag + " at/above the id allocator " +
                       std::to_string(next_block_id_));
    REQB_AUDIT_MSG(report, !b->pages.empty(), tag + " is empty yet live");
    REQB_AUDIT_MSG(report, b->insert_tick <= tick_,
                   tag + " inserted at tick " +
                       std::to_string(b->insert_tick) + " > now " +
                       std::to_string(tick_));
    REQB_AUDIT_MSG(report, b->access_cnt >= 1,
                   tag + " has Eq.1 access count 0");
    switch (b->level) {
      case ReqList::kIRL:
        REQB_AUDIT_MSG(report, b->origin_id == 0,
                       tag + " in IRL with split origin " +
                           std::to_string(b->origin_id));
        REQB_AUDIT_MSG(report, b->access_cnt == 1,
                       tag + " in IRL with access count " +
                           std::to_string(b->access_cnt) +
                           " (hits must promote or split)");
        break;
      case ReqList::kSRL:
        // δ-membership: only small blocks are promoted and SRL blocks
        // never grow, so the bound must still hold.
        REQB_AUDIT_MSG(report, b->page_count() <= opt_.delta,
                       tag + " in SRL with " +
                           std::to_string(b->page_count()) +
                           " pages > delta " + std::to_string(opt_.delta));
        REQB_AUDIT_MSG(report, b->access_cnt >= 2,
                       tag + " in SRL with access count " +
                           std::to_string(b->access_cnt) +
                           " (promotion increments it)");
        break;
      case ReqList::kDRL:
        REQB_AUDIT_MSG(report, b->origin_id != 0,
                       tag + " in DRL without a split origin");
        REQB_AUDIT_MSG(report, b->access_cnt == 1,
                       tag + " in DRL with access count " +
                           std::to_string(b->access_cnt) +
                           " (hits must promote or split)");
        break;
    }
    if (b->origin_id != 0) {
      REQB_AUDIT_MSG(report, b->origin_id < b->block_id,
                     tag + " split from origin " +
                         std::to_string(b->origin_id) +
                         " created after it");
    }
    std::vector<Lpn> sorted = b->pages;
    std::sort(sorted.begin(), sorted.end());
    REQB_AUDIT_MSG(
        report,
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
        tag + " holds a duplicate page");
    block_pages += b->pages.size();
    for (const Lpn lpn : b->pages) {
      const auto pit = page_to_block_.find(lpn);
      REQB_AUDIT_MSG(report,
                     pit != page_to_block_.end() && pit->second == b,
                     tag + " holds page " + std::to_string(lpn) +
                         " but the page table disagrees");
    }
  }
  // Combined with the per-page check above, size equality makes the page
  // table and the union of block pages the *same* set.
  REQB_AUDIT_MSG(report, block_pages == page_to_block_.size(),
                 "blocks hold " + std::to_string(block_pages) +
                     " pages, page table tracks " +
                     std::to_string(page_to_block_.size()));
}

void ReqBlockPolicy::serialize(SnapshotWriter& w) const {
  w.tag("reqblock");
  w.u64(tick_);
  w.u64(next_block_id_);
  w.u64(current_req_id_);
  w.u64(guard_insert_block_);
  w.u64(guard_split_block_);
  w.u64(mutations_);
  // Three lists head-to-tail; list membership implies the level field and
  // page order within a block is the victim-batch flush order.
  for (const auto& list : lists_) {
    w.u64(list.size());
    list.for_each([&](const ReqBlock* b) {
      w.u64(b->block_id);
      w.u64(b->req_id);
      w.u64(b->access_cnt);
      w.u64(b->insert_tick);
      w.u64(b->origin_id);
      w.u64(b->pages.size());
      for (const Lpn lpn : b->pages) w.u64(lpn);
    });
  }
}

void ReqBlockPolicy::deserialize(SnapshotReader& r) {
  r.tag("reqblock");
  REQB_CHECK_MSG(blocks_.empty(),
                 "deserialize into a non-fresh Req-block policy");
  tick_ = r.u64();
  next_block_id_ = r.u64();
  current_req_id_ = r.u64();
  guard_insert_block_ = r.u64();
  guard_split_block_ = r.u64();
  mutations_ = r.u64();
  for (std::size_t level = 0; level < lists_.size(); ++level) {
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      auto blk = std::make_unique<ReqBlock>();
      blk->block_id = r.u64();
      blk->req_id = r.u64();
      blk->level = static_cast<ReqList>(level);
      blk->access_cnt = r.u64();
      blk->insert_tick = r.u64();
      blk->origin_id = r.u64();
      const std::uint64_t pages = r.count(8);
      blk->pages.reserve(pages);
      for (std::uint64_t p = 0; p < pages; ++p) {
        const Lpn lpn = r.u64();
        blk->pages.push_back(lpn);
        if (!page_to_block_.emplace(lpn, blk.get()).second) {
          throw SnapshotError("Req-block snapshot repeats a page");
        }
      }
      ReqBlock* raw = blk.get();
      if (!blocks_.emplace(raw->block_id, std::move(blk)).second) {
        throw SnapshotError("Req-block snapshot repeats a block id");
      }
      lists_[level].push_back(raw);
    }
  }
  // The occupancy memo key starts at ~0 on a fresh instance, which can
  // never equal the restored mutation counter, so the memo rebuilds lazily.
}

}  // namespace reqblock
