// Request block: the unit of cache management in Req-block (paper §3.1).
//
// A request block groups the cached pages that entered the buffer through
// one write request. Blocks live on exactly one of three linked lists:
//
//   IRL (Inserted Request List)  — every block starts here;
//   SRL (Small Request List)     — blocks with <= delta pages, promoted on
//                                  a hit (highest retention priority);
//   DRL (Divided Request List)   — the *hit portions* split out of large
//                                  blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "util/intrusive_list.h"
#include "util/types.h"

namespace reqblock {

enum class ReqList : std::uint8_t { kIRL = 0, kSRL = 1, kDRL = 2 };

inline const char* to_string(ReqList l) {
  switch (l) {
    case ReqList::kIRL: return "IRL";
    case ReqList::kSRL: return "SRL";
    case ReqList::kDRL: return "DRL";
  }
  return "?";
}

struct ReqBlock {
  /// Unique block identity (never reused within a policy instance).
  std::uint64_t block_id = 0;
  /// The host request this block belongs to (groups pages per request).
  std::uint64_t req_id = 0;
  /// Which of the three lists currently holds the block.
  ReqList level = ReqList::kIRL;
  /// Pages currently in the block (unordered; blocks are small).
  std::vector<Lpn> pages;
  /// Paper Eq. 1: access count since buffering, initialized to 1.
  std::uint64_t access_cnt = 1;
  /// Paper Eq. 1: T_insert, in policy ticks (one tick per page access).
  Tick insert_tick = 0;
  /// For DRL blocks: the block this one was split from (0 = none). Used by
  /// the downgraded-merge eviction path (paper Fig. 6).
  std::uint64_t origin_id = 0;

  ListHook hook;

  std::size_t page_count() const { return pages.size(); }

  /// Removes one page; returns false if absent. O(block size).
  bool remove_page(Lpn lpn) {
    for (auto& p : pages) {
      if (p == lpn) {
        p = pages.back();
        pages.pop_back();
        return true;
      }
    }
    return false;
  }
};

/// Page counts per list, logged for the paper's Fig. 13.
struct ListOccupancy {
  std::uint64_t irl_pages = 0;
  std::uint64_t srl_pages = 0;
  std::uint64_t drl_pages = 0;
  std::uint64_t irl_blocks = 0;
  std::uint64_t srl_blocks = 0;
  std::uint64_t drl_blocks = 0;

  std::uint64_t total_pages() const {
    return irl_pages + srl_pages + drl_pages;
  }
};

}  // namespace reqblock
