// Eviction priority of a request block (paper Eq. 1) plus the ablation
// variants benchmarked by bench_ablation_freq.
#pragma once

#include <limits>

#include "core/req_block.h"
#include "util/types.h"

namespace reqblock {

/// Which terms of Eq. 1 participate in the score.
enum class FreqMode {
  kFull,      // access_cnt / (pages * (t_now - t_insert))   — the paper
  kNoTime,    // access_cnt / pages                          — drop recency
  kNoSize,    // access_cnt / (t_now - t_insert)             — drop size bias
  kCountOnly  // access_cnt                                   — pure frequency
};

inline const char* to_string(FreqMode m) {
  switch (m) {
    case FreqMode::kFull: return "full";
    case FreqMode::kNoTime: return "no-time";
    case FreqMode::kNoSize: return "no-size";
    case FreqMode::kCountOnly: return "count-only";
  }
  return "?";
}

/// Eq. 1: Freq = Access_cnt / (Page_num * (T_cur - T_insert)).
/// A zero time distance (block inserted this very tick) means the block is
/// maximally hot: +infinity, never the minimum.
inline double req_block_freq(const ReqBlock& blk, Tick now,
                             FreqMode mode = FreqMode::kFull) {
  const double acc = static_cast<double>(blk.access_cnt);
  const double pages =
      static_cast<double>(blk.page_count() == 0 ? 1 : blk.page_count());
  const double age = now > blk.insert_tick
                         ? static_cast<double>(now - blk.insert_tick)
                         : 0.0;
  switch (mode) {
    case FreqMode::kFull:
      if (age == 0.0) return std::numeric_limits<double>::infinity();
      return acc / (pages * age);
    case FreqMode::kNoTime:
      return acc / pages;
    case FreqMode::kNoSize:
      if (age == 0.0) return std::numeric_limits<double>::infinity();
      return acc / age;
    case FreqMode::kCountOnly:
      return acc;
  }
  return acc;
}

}  // namespace reqblock
