#include "sim/report.h"

#include <algorithm>
#include <array>
#include <ostream>

#include "util/strings.h"

namespace reqblock {

void print_config(std::ostream& os, const SsdConfig& cfg) {
  TextTable t({"Parameter", "Value", "Parameter", "Value"});
  t.add_row({"Capacity", format_bytes(static_cast<double>(cfg.capacity_bytes)),
             "Read latency",
             format_double(static_cast<double>(cfg.read_latency) /
                               kMillisecond, 3) + "ms"});
  t.add_row({"Channel Size", std::to_string(cfg.channels), "Write latency",
             format_double(static_cast<double>(cfg.program_latency) /
                               kMillisecond, 0) + "ms"});
  t.add_row({"Chip Size", std::to_string(cfg.chips_per_channel),
             "Erase latency",
             format_double(static_cast<double>(cfg.erase_latency) /
                               kMillisecond, 0) + "ms"});
  t.add_row({"Page per block", std::to_string(cfg.pages_per_block),
             "Transfer (Byte)",
             std::to_string(cfg.transfer_per_byte) + "ns"});
  t.add_row({"Page Size", format_bytes(cfg.page_size), "GC Threshold",
             format_double(cfg.gc_free_threshold * 100, 0) + "%"});
  t.print(os);
}

double metadata_percent(const RunResult& r) {
  const double cache_bytes =
      static_cast<double>(r.cache_capacity_pages) * 4096.0;
  return cache_bytes == 0.0
             ? 0.0
             : r.cache.metadata_bytes.mean() / cache_bytes * 100.0;
}

std::vector<std::string> result_row(const RunResult& r) {
  return {
      r.trace_name,
      r.policy_name,
      format_double(static_cast<double>(r.cache_capacity_pages) * 4.0 /
                        1024.0, 0) + "MB",
      format_double(r.hit_ratio() * 100.0, 2) + "%",
      format_double(r.mean_response_ms(), 3) + "ms",
      format_double(static_cast<double>(r.response.p99()) / kMillisecond, 2) +
          "ms",
      std::to_string(r.flash_write_count()),
      format_double(r.flash.waf(), 3),
      format_double(r.cache.eviction_batch.mean(), 2),
      format_double(metadata_percent(r), 3) + "%",
  };
}

void write_results_csv(std::ostream& os,
                       const std::vector<RunResult>& results) {
  // Fault columns appear only when some run injected faults, so fault-free
  // result files stay byte-identical to builds without the fault subsystem.
  const bool any_fault =
      std::any_of(results.begin(), results.end(),
                  [](const RunResult& r) { return r.fault.enabled; });
  const bool any_overload =
      std::any_of(results.begin(), results.end(),
                  [](const RunResult& r) { return r.overload.enabled; });
  // Aging columns follow the same rule: they appear only when some run
  // actually aged (any_aging() looks at the counters, not the plan, so a
  // plan that never fired keeps the historical layout).
  const bool any_aging =
      std::any_of(results.begin(), results.end(),
                  [](const RunResult& r) { return r.fault.any_aging(); });
  // Integrity columns fold in only when some run actually saw bit errors
  // or scrubbed — an enabled-but-silent integrity model keeps error-free
  // exports byte-stable.
  const bool any_integrity =
      std::any_of(results.begin(), results.end(),
                  [](const RunResult& r) { return r.fault.integrity.any(); });
  os << "trace,policy,cache_pages,requests,hit_ratio,mean_ns,p50_ns,"
        "p95_ns,p99_ns,p999_ns,flash_writes,flash_reads,gc_moves,erases,"
        "waf,pages_per_evict,metadata_pct,channel_util,chip_util";
  if (any_fault) {
    os << ",program_faults,read_faults,erase_faults,"
          "bad_block_marks,blocks_retired,retires_refused,degraded_planes,"
          "power_loss_events,lost_dirty_pages,recovery_ns";
  }
  if (any_overload) {
    os << ",queue_p50_ns,queue_p95_ns,queue_p99_ns,queue_p999_ns,"
          "queue_wait_ns,timeouts,sheds,retries,throttle_events,"
          "throttle_ns,bg_flush_batches,bg_flush_pages";
  }
  if (any_aging) {
    os << ",disturb_migrations,disturb_pages_moved,retention_scrubs,"
          "retention_pages_moved,wear_threshold_crossings,"
          "degraded_enters,degraded_exits,degraded_write_sheds";
  }
  if (any_integrity) {
    os << ",ecc_attempts,ecc_corrected,retry_corrected,retry_steps,"
          "parity_rebuilds,parity_peer_reads,uncorrectable,host_reads_lost,"
          "patrol_scrubs,patrol_pages_examined,patrol_pages_moved,"
          "integrity_recovery_ns";
  }
  os << '\n';
  for (const auto& r : results) {
    os << r.trace_name << ',' << r.policy_name << ','
       << r.cache_capacity_pages << ',' << r.requests << ','
       << format_double(r.hit_ratio(), 6) << ','
       << static_cast<std::int64_t>(r.response.mean()) << ','
       << r.response.p50() << ',' << r.response.p95() << ','
       << r.response.p99() << ',' << r.response.p999() << ','
       << r.flash.host_page_writes << ',' << r.flash.host_page_reads << ','
       << r.flash.gc_page_moves << ',' << r.flash.erases << ','
       << format_double(r.flash.waf(), 4) << ','
       << format_double(r.cache.eviction_batch.mean(), 3) << ','
       << format_double(metadata_percent(r), 4) << ','
       << format_double(r.channel_utilization, 4) << ','
       << format_double(r.chip_utilization, 4);
    if (any_fault) {
      os << ',' << r.fault.program_faults << ',' << r.fault.read_faults
         << ',' << r.fault.erase_faults
         << ',' << r.fault.bad_block_marks << ',' << r.fault.blocks_retired
         << ',' << r.fault.retires_refused << ',' << r.fault.degraded_planes
         << ',' << r.fault.power_loss_events << ','
         << r.fault.lost_dirty_pages << ',' << r.fault.recovery_time_total;
    }
    if (any_overload) {
      os << ',' << r.queue_wait.p50() << ',' << r.queue_wait.p95() << ','
         << r.queue_wait.p99() << ',' << r.queue_wait.p999() << ','
         << r.overload.queue_wait_total << ',' << r.overload.timeouts << ','
         << r.overload.sheds << ',' << r.overload.retries << ','
         << r.overload.throttle_events << ','
         << r.overload.throttle_delay_total << ','
         << r.cache.bg_flush_batches << ',' << r.cache.bg_flush_pages;
    }
    if (any_aging) {
      os << ',' << r.fault.read_disturb_migrations << ','
         << r.fault.read_disturb_pages_moved << ','
         << r.fault.retention_scrubs << ','
         << r.fault.retention_pages_moved << ','
         << r.fault.wear_threshold_crossings << ','
         << r.fault.degraded_mode_enters << ',' << r.fault.degraded_mode_exits
         << ',' << r.fault.degraded_write_sheds;
    }
    if (any_integrity) {
      const IntegrityMetrics& in = r.fault.integrity;
      os << ',' << in.ecc_attempts << ',' << in.ecc_corrected << ','
         << in.retry_corrected << ',' << in.retry_steps_total << ','
         << in.parity_rebuilds << ',' << in.parity_peer_reads << ','
         << in.uncorrectable << ',' << in.host_reads_lost << ','
         << in.patrol_scrubs << ',' << in.patrol_pages_examined << ','
         << in.patrol_pages_moved << ',' << in.recovery_time_total;
    }
    os << '\n';
  }
}

void write_fault_summary(std::ostream& os, const RunResult& r) {
  if (!r.fault.enabled) return;
  os << "Fault injection (" << r.trace_name << " / " << r.policy_name
     << ")\n";
  TextTable t({"fault class", "count", "outcome", "count"});
  t.add_row({"program faults", std::to_string(r.fault.program_faults),
             "bad-block marks", std::to_string(r.fault.bad_block_marks)});
  t.add_row({"read faults", std::to_string(r.fault.read_faults),
             "blocks retired", std::to_string(r.fault.blocks_retired)});
  t.add_row({"erase faults", std::to_string(r.fault.erase_faults),
             "retires refused", std::to_string(r.fault.retires_refused)});
  t.add_row({"power losses", std::to_string(r.fault.power_loss_events),
             "degraded planes", std::to_string(r.fault.degraded_planes)});
  t.add_row({"lost dirty pages", std::to_string(r.fault.lost_dirty_pages),
             "recovery time",
             format_double(static_cast<double>(r.fault.recovery_time_total) /
                               kMillisecond, 2) + "ms"});
  t.print(os);
}

void write_aging_summary(std::ostream& os, const RunResult& r) {
  if (!r.fault.any_aging()) return;
  os << "Device aging (" << r.trace_name << " / " << r.policy_name << ")\n";
  TextTable t({"wear & refresh", "count", "end of life", "count"});
  t.add_row({"disturb migrations",
             std::to_string(r.fault.read_disturb_migrations),
             "degraded enters", std::to_string(r.fault.degraded_mode_enters)});
  t.add_row({"disturb pages moved",
             std::to_string(r.fault.read_disturb_pages_moved),
             "degraded exits", std::to_string(r.fault.degraded_mode_exits)});
  t.add_row({"retention scrubs", std::to_string(r.fault.retention_scrubs),
             "writes shed", std::to_string(r.fault.degraded_write_sheds)});
  t.add_row({"retention pages moved",
             std::to_string(r.fault.retention_pages_moved),
             "blocks retired", std::to_string(r.fault.blocks_retired)});
  t.add_row({"rated-wear crossings",
             std::to_string(r.fault.wear_threshold_crossings),
             "degraded planes", std::to_string(r.fault.degraded_planes)});
  t.print(os);
}

void write_integrity_summary(std::ostream& os, const RunResult& r) {
  const IntegrityMetrics& in = r.fault.integrity;
  if (!in.any()) return;
  os << "Data integrity (" << r.trace_name << " / " << r.policy_name
     << ")\n";
  TextTable t({"recovery tier", "count", "scrub & cost", "count"});
  t.add_row({"ecc attempts", std::to_string(in.ecc_attempts),
             "patrol scrubs", std::to_string(in.patrol_scrubs)});
  t.add_row({"ecc corrected", std::to_string(in.ecc_corrected),
             "pages examined", std::to_string(in.patrol_pages_examined)});
  t.add_row({"retry corrected", std::to_string(in.retry_corrected),
             "pages refreshed", std::to_string(in.patrol_pages_moved)});
  t.add_row({"retry steps", std::to_string(in.retry_steps_total),
             "parity peer reads", std::to_string(in.parity_peer_reads)});
  t.add_row({"parity rebuilds", std::to_string(in.parity_rebuilds),
             "host reads lost", std::to_string(in.host_reads_lost)});
  t.add_row({"uncorrectable", std::to_string(in.uncorrectable),
             "recovery time",
             format_double(static_cast<double>(in.recovery_time_total) /
                               kMillisecond, 2) + "ms"});
  t.print(os);
}

void write_reliability_summary(std::ostream& os, const RunResult& r) {
  // One fixed section order — fault, aging, integrity — so a report's
  // shape depends only on which subsystems fired, never on which driver
  // (or driver code path) printed it.
  write_fault_summary(os, r);
  write_aging_summary(os, r);
  write_integrity_summary(os, r);
}

void write_overload_summary(std::ostream& os, const RunResult& r) {
  if (!r.overload.enabled) return;
  os << "Overload protection (" << r.trace_name << " / " << r.policy_name
     << ")\n";
  const auto ms = [](SimTime ns) {
    return format_double(static_cast<double>(ns) / kMillisecond, 3) + "ms";
  };
  TextTable t({"admission / SLO", "value", "relief", "value"});
  t.add_row({"admitted", std::to_string(r.overload.admitted),
             "bg-flush batches", std::to_string(r.cache.bg_flush_batches)});
  t.add_row({"queued (wait>0)", std::to_string(r.overload.queued_waits),
             "bg-flush pages", std::to_string(r.cache.bg_flush_pages)});
  t.add_row({"timeouts", std::to_string(r.overload.timeouts),
             "throttle events", std::to_string(r.overload.throttle_events)});
  t.add_row({"sheds", std::to_string(r.overload.sheds), "throttle total",
             ms(r.overload.throttle_delay_total)});
  t.add_row({"retries", std::to_string(r.overload.retries), "queue-wait total",
             ms(r.overload.queue_wait_total)});
  t.add_row({"queue-wait p50", ms(r.queue_wait.p50()), "queue-wait p99",
             ms(r.queue_wait.p99())});
  t.add_row({"queue-wait p95", ms(r.queue_wait.p95()), "queue-wait p999",
             ms(r.queue_wait.p999())});
  t.print(os);
}

void write_self_profile(std::ostream& os, const RunResult& r) {
  const auto& entries = r.telemetry.profile.entries;
  if (entries.empty()) return;
  double total_ns = 0.0;
  for (const auto& e : entries) {
    total_ns += static_cast<double>(e.total_ns);
  }
  os << "Self-profile (" << r.trace_name << " / " << r.policy_name << ")\n";
  TextTable t({"section", "calls", "total", "mean", "share"});
  for (const auto& e : entries) {
    const double ns = static_cast<double>(e.total_ns);
    t.add_row({e.section, std::to_string(e.calls),
               format_double(ns / 1e6, 2) + "ms",
               format_double(e.calls == 0
                                 ? 0.0
                                 : ns / static_cast<double>(e.calls), 0) +
                   "ns",
               format_double(total_ns == 0.0 ? 0.0 : ns / total_ns * 100.0,
                             1) +
                   "%"});
  }
  t.print(os);
  os << "(wall-clock diagnostics; excluded from result CSVs, checkpoints "
        "and config fingerprints)\n";
}

void write_snapshot_summary(std::ostream& os, const RunResult& r) {
  const MetricsSeries& s = r.telemetry.snapshots;
  if (s.empty()) return;
  os << "Metric snapshots (" << r.trace_name << " / " << r.policy_name
     << "): " << s.rows.size() << " samples, "
     << s.columns.size() << " metrics\n";
  TextTable t({"metric", "first", "last", "min", "max"});
  for (std::size_t c = 0; c < s.columns.size(); ++c) {
    double lo = s.rows.front().values[c];
    double hi = lo;
    for (const auto& row : s.rows) {
      lo = std::min(lo, row.values[c]);
      hi = std::max(hi, row.values[c]);
    }
    t.add_row({s.columns[c], format_double(s.rows.front().values[c], 4),
               format_double(s.rows.back().values[c], 4),
               format_double(lo, 4), format_double(hi, 4)});
  }
  t.print(os);
}

namespace {

/// The two tail slices the reports show: the slowest decile answers
/// "what shapes my p90+", the slowest percentile "where did my p99 go".
constexpr std::array<double, 2> kTailFractions = {0.10, 0.01};

std::string slice_label(double fraction) {
  return "slowest " + format_double(fraction * 100.0, 0) + "%";
}

}  // namespace

void write_tail_attribution(std::ostream& os,
                            const std::vector<RunResult>& results) {
  for (const auto& r : results) {
    const AttributionResult& a = r.attribution;
    if (!a.enabled || a.requests == 0) continue;
    os << "Tail attribution (" << r.trace_name << " / " << r.policy_name
       << ")\n";
    TextTable t({"slice", "requests", "floor", "component", "time", "share"});
    for (const double fraction : kTailFractions) {
      const TailSlice slice = tail_slice(a, fraction);
      const auto ranked = rank_components(slice);
      const double total = static_cast<double>(slice.total_ns);
      bool lead = true;
      for (const std::size_t c : ranked) {
        if (slice.component_ns[c] == 0) continue;
        const double ns = static_cast<double>(slice.component_ns[c]);
        t.add_row({lead ? slice_label(fraction) : "",
                   lead ? std::to_string(slice.requests) : "",
                   lead ? format_double(static_cast<double>(
                                            slice.threshold_ns) /
                                            kMillisecond, 2) + "ms"
                        : "",
                   to_string(static_cast<AttrComponent>(c)),
                   format_double(ns / kMillisecond, 2) + "ms",
                   format_double(total == 0.0 ? 0.0 : ns / total * 100.0, 1) +
                       "%"});
        lead = false;
      }
    }
    t.print(os);
  }
}

void write_tail_attribution_csv(std::ostream& os,
                                const std::vector<RunResult>& results) {
  // Fixed shape: every attribution-enabled run contributes exactly
  // 2 slices x 8 components, zeros included, ranked by contribution —
  // byte-stable across identical runs.
  os << "trace,policy,slice_pct,slice_requests,threshold_ns,slice_total_ns,"
        "component,component_ns,share\n";
  for (const auto& r : results) {
    const AttributionResult& a = r.attribution;
    if (!a.enabled || a.requests == 0) continue;
    for (const double fraction : kTailFractions) {
      const TailSlice slice = tail_slice(a, fraction);
      const auto ranked = rank_components(slice);
      for (const std::size_t c : ranked) {
        const double share =
            slice.total_ns == 0
                ? 0.0
                : static_cast<double>(slice.component_ns[c]) /
                      static_cast<double>(slice.total_ns);
        os << r.trace_name << ',' << r.policy_name << ','
           << format_double(fraction * 100.0, 0) << ','
           << slice.requests << ',' << slice.threshold_ns << ','
           << slice.total_ns << ','
           << to_string(static_cast<AttrComponent>(c)) << ','
           << slice.component_ns[c] << ',' << format_double(share, 6)
           << '\n';
      }
    }
  }
}

void write_tenant_summary(std::ostream& os, const RunResult& r) {
  if (r.tenants.empty()) return;
  os << "Tenants (" << r.trace_name << " / " << r.policy_name << ")\n";
  const auto ms = [](SimTime ns) {
    return format_double(static_cast<double>(ns) / kMillisecond, 3) + "ms";
  };
  TextTable t({"tenant", "requests", "admitted", "sheds", "q-wait p50",
               "q-wait p99", "resp mean", "resp p99"});
  for (const TenantResult& tn : r.tenants) {
    t.add_row({tn.name, std::to_string(tn.requests),
               std::to_string(tn.overload.admitted),
               std::to_string(tn.overload.sheds), ms(tn.queue_wait.p50()),
               ms(tn.queue_wait.p99()),
               format_double(tn.response.mean() / kMillisecond, 3) + "ms",
               ms(tn.response.p99())});
  }
  t.print(os);
}

void write_tenant_csv(std::ostream& os,
                      const std::vector<RunResult>& results) {
  os << "trace,policy,tenant,requests,read_requests,write_requests,"
        "admitted,queued_waits,timeouts,sheds,retries,"
        "queue_wait_total_ns,queue_p50_ns,queue_p95_ns,queue_p99_ns,"
        "queue_p999_ns,resp_mean_ns,resp_p50_ns,resp_p99_ns,resp_p999_ns,"
        "attr_requests";
  for (std::size_t c = 0; c < kAttrComponents; ++c) {
    os << ",attr_" << to_string(static_cast<AttrComponent>(c)) << "_ns";
  }
  os << '\n';
  for (const auto& r : results) {
    for (const TenantResult& tn : r.tenants) {
      os << r.trace_name << ',' << r.policy_name << ',' << tn.name << ','
         << tn.requests << ',' << tn.read_requests << ','
         << tn.write_requests << ',' << tn.overload.admitted << ','
         << tn.overload.queued_waits << ',' << tn.overload.timeouts << ','
         << tn.overload.sheds << ',' << tn.overload.retries << ','
         << tn.overload.queue_wait_total << ',' << tn.queue_wait.p50() << ','
         << tn.queue_wait.p95() << ',' << tn.queue_wait.p99() << ','
         << tn.queue_wait.p999() << ',' << format_double(tn.response.mean(), 1)
         << ',' << tn.response.p50() << ',' << tn.response.p99() << ','
         << tn.response.p999() << ',' << tn.attr_requests;
      for (const std::uint64_t comp : tn.attr_ns) os << ',' << comp;
      os << '\n';
    }
  }
}

TextTable results_table(const std::vector<RunResult>& results) {
  TextTable t({"trace", "policy", "cache", "hit", "mean", "p99",
               "flash-writes", "WAF", "pages/evict", "metadata"});
  for (const auto& r : results) t.add_row(result_row(r));
  return t;
}

}  // namespace reqblock
