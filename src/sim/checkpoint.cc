#include "sim/checkpoint.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>

#include "snapshot/snapshot.h"
#include "util/atomic_file.h"
#include "util/check.h"
#include "util/strings.h"

namespace reqblock {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSessionKind = "session";
constexpr const char* kResultKind = "run_result";
constexpr const char* kManifestName = "manifest";
constexpr const char* kManifestMagic = "reqblock-matrix-manifest 1";

std::string ckpt_prefix(const std::string& stem) { return stem + ".ckpt."; }

/// All `<stem>.ckpt.<seq>` files in `dir` as (sequence, path), ascending
/// by sequence. Malformed suffixes are ignored.
std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir, const std::string& stem) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  const std::string prefix = ckpt_prefix(stem);
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const auto seq = parse_u64(name.substr(prefix.size()));
    if (!seq) continue;
    found.emplace_back(*seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace

std::string save_session_checkpoint(const SimulationSession& session,
                                    const std::string& dir,
                                    const std::string& stem,
                                    std::uint32_t keep_last) {
  REQB_CHECK_MSG(keep_last >= 1, "keep_last must retain at least one file");
  fs::create_directories(dir);
  SnapshotWriter w;
  session.serialize(w);
  SnapshotHeader header;
  header.kind = kSessionKind;
  header.config_hash = session.config_hash();
  header.trace_hash = session.trace_hash();
  header.sequence = session.served();
  const std::string path =
      (fs::path(dir) / (ckpt_prefix(stem) + std::to_string(session.served())))
          .string();
  save_snapshot_file(path, header, w.take());
  // Prune only after the new checkpoint is durably in place, so a crash
  // here never leaves fewer checkpoints than before the save.
  auto all = list_checkpoints(dir, stem);
  while (all.size() > keep_last) {
    std::error_code ec;
    fs::remove(all.front().second, ec);
    all.erase(all.begin());
  }
  return path;
}

void restore_session_checkpoint(SimulationSession& session,
                                const std::string& path) {
  SnapshotHeader header;
  const std::string payload = load_snapshot_file(path, header);
  require_snapshot_identity(header, kSessionKind, session.config_hash(),
                            session.trace_hash(), path);
  SnapshotReader r(payload);
  session.deserialize(r);
  r.expect_end();
}

std::string find_latest_checkpoint(const std::string& dir,
                                   const std::string& stem) {
  const auto all = list_checkpoints(dir, stem);
  return all.empty() ? std::string() : all.back().second;
}

namespace {

/// Shared checkpointed replay loop of an already-constructed session.
RunResult run_session_with_checkpoints(SimulationSession& session,
                                       const CheckpointOptions& ckpt,
                                       const std::string& resume_from) {
  if (!resume_from.empty()) restore_session_checkpoint(session, resume_from);
  const bool periodic = !ckpt.dir.empty() && ckpt.every_n_requests != 0;
  std::uint64_t next_ckpt = 0;
  if (periodic) {
    next_ckpt =
        (session.served() / ckpt.every_n_requests + 1) * ckpt.every_n_requests;
  }
  while (session.step()) {
    if (periodic && session.served() >= next_ckpt) {
      save_session_checkpoint(session, ckpt.dir, "run", ckpt.keep_last);
      next_ckpt += ckpt.every_n_requests;
    }
  }
  return session.finish();
}

}  // namespace

RunResult run_with_checkpoints(const SimOptions& options, TraceSource& trace,
                               const CheckpointOptions& ckpt,
                               const std::string& resume_from) {
  SimulationSession session(options, trace);
  return run_session_with_checkpoints(session, ckpt, resume_from);
}

RunResult run_with_checkpoints(const SimOptions& options,
                               const std::vector<TraceSource*>& tenant_traces,
                               const CheckpointOptions& ckpt,
                               const std::string& resume_from) {
  SimulationSession session(options, tenant_traces);
  return run_session_with_checkpoints(session, ckpt, resume_from);
}

// --- RunResult storage -----------------------------------------------------

void serialize_run_result(SnapshotWriter& w, const RunResult& res) {
  w.tag("run_result");
  w.str(res.trace_name);
  w.str(res.policy_name);
  w.u64(res.cache_capacity_pages);
  w.u64(res.requests);
  w.u64(res.read_requests);
  w.u64(res.write_requests);
  serialize(w, res.response);
  serialize(w, res.read_response);
  serialize(w, res.write_response);
  serialize(w, res.queue_wait);
  res.cache.serialize(w);
  res.flash.serialize(w);
  res.fault.serialize(w);
  res.overload.serialize(w);
  w.str(res.error);
  w.u64(res.occupancy_series.size());
  for (const ListOccupancy& occ : res.occupancy_series) {
    w.u64(occ.irl_pages);
    w.u64(occ.srl_pages);
    w.u64(occ.drl_pages);
    w.u64(occ.irl_blocks);
    w.u64(occ.srl_blocks);
    w.u64(occ.drl_blocks);
  }
  w.tag("telemetry");
  w.u64(res.telemetry.events.size());
  for (const TraceEvent& e : res.telemetry.events) {
    w.i64(e.at);
    w.i64(e.dur);
    w.u64(e.lpn);
    w.u64(e.arg);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u16(e.track);
    w.u16(e.channel);
  }
  w.u64(res.telemetry.events_emitted);
  w.u64(res.telemetry.events_dropped);
  w.u64(res.telemetry.events_sampled_out);
  res.telemetry.snapshots.serialize(w);
  w.u64(res.telemetry.profile.entries.size());
  for (const auto& entry : res.telemetry.profile.entries) {
    w.str(entry.section);
    w.u64(entry.calls);
    w.u64(entry.total_ns);
  }
  w.i64(res.sim_end);
  w.f64(res.wall_seconds);
  w.u64(res.warmup_requests);
  w.f64(res.channel_utilization);
  w.f64(res.chip_utilization);
  res.attribution.serialize(w);
  w.tag("tenants");
  w.u64(res.tenants.size());
  for (const TenantResult& tr : res.tenants) tr.serialize(w);
}

void deserialize_run_result(SnapshotReader& r, RunResult& res) {
  r.tag("run_result");
  res.trace_name = r.str();
  res.policy_name = r.str();
  res.cache_capacity_pages = r.u64();
  res.requests = r.u64();
  res.read_requests = r.u64();
  res.write_requests = r.u64();
  deserialize(r, res.response);
  deserialize(r, res.read_response);
  deserialize(r, res.write_response);
  deserialize(r, res.queue_wait);
  res.cache.deserialize(r);
  res.flash.deserialize(r);
  res.fault.deserialize(r);
  res.overload.deserialize(r);
  res.error = r.str();
  const std::uint64_t occ_count = r.count(48);
  res.occupancy_series.clear();
  res.occupancy_series.reserve(occ_count);
  for (std::uint64_t i = 0; i < occ_count; ++i) {
    ListOccupancy occ;
    occ.irl_pages = r.u64();
    occ.srl_pages = r.u64();
    occ.drl_pages = r.u64();
    occ.irl_blocks = r.u64();
    occ.srl_blocks = r.u64();
    occ.drl_blocks = r.u64();
    res.occupancy_series.push_back(occ);
  }
  r.tag("telemetry");
  const std::uint64_t events = r.count(37);
  res.telemetry.events.clear();
  res.telemetry.events.reserve(events);
  for (std::uint64_t i = 0; i < events; ++i) {
    TraceEvent e;
    e.at = r.i64();
    e.dur = r.i64();
    e.lpn = r.u64();
    e.arg = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(EventKind::kAttrSpan)) {
      throw SnapshotError("stored result has an unknown event kind");
    }
    e.kind = static_cast<EventKind>(kind);
    e.track = r.u16();
    e.channel = r.u16();
    res.telemetry.events.push_back(e);
  }
  res.telemetry.events_emitted = r.u64();
  res.telemetry.events_dropped = r.u64();
  res.telemetry.events_sampled_out = r.u64();
  res.telemetry.snapshots.deserialize(r);
  const std::uint64_t profile_entries = r.count(20);
  res.telemetry.profile.entries.clear();
  res.telemetry.profile.entries.reserve(profile_entries);
  for (std::uint64_t i = 0; i < profile_entries; ++i) {
    ProfileReport::Entry entry;
    entry.section = r.str();
    entry.calls = r.u64();
    entry.total_ns = r.u64();
    res.telemetry.profile.entries.push_back(entry);
  }
  res.sim_end = r.i64();
  res.wall_seconds = r.f64();
  res.warmup_requests = r.u64();
  res.channel_utilization = r.f64();
  res.chip_utilization = r.f64();
  res.attribution.deserialize(r);
  r.tag("tenants");
  const std::uint64_t tenant_count = r.count(16);
  res.tenants.clear();
  res.tenants.reserve(tenant_count);
  for (std::uint64_t i = 0; i < tenant_count; ++i) {
    TenantResult tr;
    tr.deserialize(r);
    res.tenants.push_back(std::move(tr));
  }
}

void save_run_result(const RunResult& result, const std::string& path,
                     std::uint64_t config_hash, std::uint64_t trace_hash) {
  SnapshotWriter w;
  serialize_run_result(w, result);
  SnapshotHeader header;
  header.kind = kResultKind;
  header.config_hash = config_hash;
  header.trace_hash = trace_hash;
  header.sequence = result.requests;
  save_snapshot_file(path, header, w.take());
}

RunResult load_run_result(const std::string& path, std::uint64_t config_hash,
                          std::uint64_t trace_hash) {
  SnapshotHeader header;
  const std::string payload = load_snapshot_file(path, header);
  require_snapshot_identity(header, kResultKind, config_hash, trace_hash,
                            path);
  SnapshotReader r(payload);
  RunResult result;
  deserialize_run_result(r, result);
  r.expect_end();
  return result;
}

// --- Matrix manifest -------------------------------------------------------

std::uint64_t matrix_fingerprint(const std::vector<ExperimentCase>& cases) {
  Fingerprint fp;
  fp.add_string("experiment_matrix");
  fp.add(cases.size());
  for (const ExperimentCase& c : cases) {
    fp.add(config_fingerprint(c.options));
    fp.add(SyntheticTraceSource(c.profile).identity_hash());
    fp.add_string(c.label);
  }
  return fp.value();
}

namespace {

std::string manifest_path(const std::string& dir) {
  return (fs::path(dir) / kManifestName).string();
}

void write_manifest(const std::string& dir, std::uint64_t matrix_hash,
                    std::size_t case_count, const std::set<std::size_t>& done) {
  std::ostringstream os;
  os << kManifestMagic << '\n';
  os << "matrix " << matrix_hash << '\n';
  os << "cases " << case_count << '\n';
  for (const std::size_t i : done) os << "done " << i << '\n';
  write_file_atomic(manifest_path(dir), os.str());
}

/// Parses the manifest, refusing (SnapshotError) one written for a
/// different matrix. Returns the completed-case set; empty when no
/// manifest exists yet.
std::set<std::size_t> read_manifest(const std::string& dir,
                                    std::uint64_t matrix_hash,
                                    std::size_t case_count) {
  std::set<std::size_t> done;
  const std::string path = manifest_path(dir);
  std::ifstream in(path);
  if (!in) return done;
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    throw SnapshotError(path + ": not a matrix manifest");
  }
  std::uint64_t stored_hash = 0;
  std::uint64_t stored_cases = 0;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "matrix") {
      ls >> stored_hash;
    } else if (key == "cases") {
      ls >> stored_cases;
    } else if (key == "done") {
      std::size_t idx = 0;
      ls >> idx;
      done.insert(idx);
    } else if (!key.empty()) {
      throw SnapshotError(path + ": unknown manifest entry '" + key + "'");
    }
  }
  if (in.bad()) {
    throw std::runtime_error("I/O error reading manifest: " + path);
  }
  if (stored_hash != matrix_hash) {
    throw SnapshotError(
        path + ": manifest belongs to a different experiment matrix "
               "(delete the checkpoint directory to start over)");
  }
  if (stored_cases != case_count) {
    throw SnapshotError(path + ": manifest case count mismatch");
  }
  for (const std::size_t i : done) {
    if (i >= case_count) {
      throw SnapshotError(path + ": manifest marks a case out of range");
    }
  }
  return done;
}

void remove_case_checkpoints(const std::string& dir, const std::string& stem) {
  for (const auto& [seq, path] : list_checkpoints(dir, stem)) {
    std::error_code ec;
    fs::remove(path, ec);
  }
}

}  // namespace

std::vector<RunResult> run_cases_resumable(
    const std::vector<ExperimentCase>& cases, const CheckpointOptions& ckpt) {
  REQB_CHECK_MSG(!ckpt.dir.empty(),
                 "run_cases_resumable needs a checkpoint directory");
  fs::create_directories(ckpt.dir);
  const std::uint64_t matrix_hash = matrix_fingerprint(cases);
  std::set<std::size_t> done = read_manifest(ckpt.dir, matrix_hash,
                                             cases.size());

  std::vector<RunResult> results(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ExperimentCase& c = cases[i];
    const std::string stem = "case_" + std::to_string(i);
    const std::string result_path =
        (fs::path(ckpt.dir) / (stem + ".result")).string();
    // Multi-tenant cases replay one derived stream per tenant; the bundle
    // must outlive the session (which holds non-owning pointers).
    SyntheticTraceSource trace(c.profile);
    TenantStreams streams;
    std::unique_ptr<SimulationSession> owned_session;
    if (c.options.tenants.enabled()) {
      streams = make_tenant_streams(c.profile, c.options.tenants);
      owned_session =
          std::make_unique<SimulationSession>(c.options, streams.sources);
    } else {
      owned_session = std::make_unique<SimulationSession>(c.options, trace);
    }
    SimulationSession& session = *owned_session;
    if (done.contains(i)) {
      results[i] = load_run_result(result_path, session.config_hash(),
                                   session.trace_hash());
      continue;
    }
    const std::string latest = find_latest_checkpoint(ckpt.dir, stem);
    if (!latest.empty()) restore_session_checkpoint(session, latest);
    std::uint64_t next_ckpt = 0;
    const bool periodic = ckpt.every_n_requests != 0;
    if (periodic) {
      next_ckpt = (session.served() / ckpt.every_n_requests + 1) *
                  ckpt.every_n_requests;
    }
    while (session.step()) {
      if (periodic && session.served() >= next_ckpt) {
        save_session_checkpoint(session, ckpt.dir, stem, ckpt.keep_last);
        next_ckpt += ckpt.every_n_requests;
      }
    }
    results[i] = session.finish();
    // Completion order matters for crash consistency: the stored result
    // must be durable before the manifest says the case is done; stale
    // mid-case checkpoints are deleted last (harmless leftovers if the
    // process dies in between).
    save_run_result(results[i], result_path, session.config_hash(),
                    session.trace_hash());
    done.insert(i);
    write_manifest(ckpt.dir, matrix_hash, cases.size(), done);
    remove_case_checkpoints(ckpt.dir, stem);
  }
  return results;
}

}  // namespace reqblock
