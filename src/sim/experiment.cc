#include "sim/experiment.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "telemetry/exporters.h"
#include "util/atomic_file.h"
#include "util/strings.h"

namespace reqblock {

std::vector<RunResult> run_cases_nothrow(
    const std::vector<ExperimentCase>& cases, unsigned max_threads) {
  if (max_threads == 0) {
    max_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(max_threads, cases.size()));

  std::vector<RunResult> results(cases.size());
  std::atomic<std::size_t> next{0};
  auto work = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= cases.size()) return;
      const ExperimentCase& c = cases[i];
      // A throwing case must not escape the worker thread (that would
      // std::terminate the whole process and lose every other result);
      // it becomes a per-case failure status instead.
      try {
        SyntheticTraceSource trace(c.profile);
        Simulator sim(c.options);
        results[i] = sim.run(trace);
      } catch (const std::exception& e) {
        results[i] = RunResult{};
        results[i].trace_name = c.profile.name;
        results[i].policy_name = c.options.policy.name;
        results[i].error = e.what();
      } catch (...) {
        results[i] = RunResult{};
        results[i].trace_name = c.profile.name;
        results[i].policy_name = c.options.policy.name;
        results[i].error = "unknown exception";
      }
    }
  };

  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(work);
    for (auto& t : pool) t.join();
  }
  return results;
}

std::vector<RunResult> run_cases(const std::vector<ExperimentCase>& cases,
                                 unsigned max_threads) {
  std::vector<RunResult> results = run_cases_nothrow(cases, max_threads);
  std::string failures;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) continue;
    if (!failures.empty()) failures += "; ";
    failures += "case " + std::to_string(i) + " (" +
                (cases[i].label.empty() ? results[i].policy_name
                                        : cases[i].label) +
                "): " + results[i].error;
  }
  if (!failures.empty()) {
    throw std::runtime_error("run_cases: " + failures);
  }
  return results;
}

namespace {

std::string sanitize_stem(std::string s) {
  for (char& c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' &&
        c != '_' && c != '.') {
      c = '_';
    }
  }
  return s.empty() ? std::string("run") : s;
}

}  // namespace

RunArtifacts export_run_artifacts(const RunResult& result,
                                  const std::string& out_dir,
                                  std::string stem) {
  if (stem.empty()) stem = result.trace_name + "_" + result.policy_name;
  stem = sanitize_stem(stem);
  const std::filesystem::path dir(out_dir.empty() ? "." : out_dir);
  std::filesystem::create_directories(dir);

  RunArtifacts artifacts;
  // Temp file + atomic rename per artifact: a crash mid-export never
  // leaves a truncated file that downstream tooling would mistake for a
  // complete one.
  const auto write = [&](const char* suffix, const auto& writer) {
    const std::filesystem::path path = dir / (stem + suffix);
    std::ostringstream os;
    writer(os);
    write_file_atomic(path.string(), os.str());
    return path.string();
  };
  if (!result.telemetry.events.empty()) {
    artifacts.chrome_trace = write(".trace.json", [&](std::ostream& os) {
      write_chrome_trace(os, result.telemetry.events);
    });
    artifacts.events_jsonl = write(".events.jsonl", [&](std::ostream& os) {
      write_events_jsonl(os, result.telemetry.events);
    });
  }
  if (!result.telemetry.snapshots.empty()) {
    artifacts.snapshots_csv = write(".snapshots.csv", [&](std::ostream& os) {
      write_series_csv(os, result.telemetry.snapshots);
    });
  }
  return artifacts;
}

std::uint64_t bench_request_cap(std::uint64_t fallback) {
  // Read-only environment access; nothing in the process calls setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("REQBLOCK_BENCH_REQUESTS");
  if (env == nullptr) return fallback;
  const auto parsed = parse_u64(env);
  return parsed ? *parsed : fallback;
}

unsigned bench_thread_cap() {
  // Read-only environment access; nothing in the process calls setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("REQBLOCK_BENCH_THREADS");
  if (env == nullptr) return 0;
  const auto parsed = parse_u64(env);
  return parsed ? static_cast<unsigned>(*parsed) : 0;
}

}  // namespace reqblock
