#include "sim/experiment.h"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "util/strings.h"

namespace reqblock {

std::vector<RunResult> run_cases(const std::vector<ExperimentCase>& cases,
                                 unsigned max_threads) {
  if (max_threads == 0) {
    max_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(max_threads, cases.size()));

  std::vector<RunResult> results(cases.size());
  std::atomic<std::size_t> next{0};
  auto work = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= cases.size()) return;
      const ExperimentCase& c = cases[i];
      SyntheticTraceSource trace(c.profile);
      Simulator sim(c.options);
      results[i] = sim.run(trace);
    }
  };

  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(work);
    for (auto& t : pool) t.join();
  }
  return results;
}

std::uint64_t bench_request_cap(std::uint64_t fallback) {
  const char* env = std::getenv("REQBLOCK_BENCH_REQUESTS");
  if (env == nullptr) return fallback;
  const auto parsed = parse_u64(env);
  return parsed ? *parsed : fallback;
}

unsigned bench_thread_cap() {
  const char* env = std::getenv("REQBLOCK_BENCH_THREADS");
  if (env == nullptr) return 0;
  const auto parsed = parse_u64(env);
  return parsed ? static_cast<unsigned>(*parsed) : 0;
}

}  // namespace reqblock
