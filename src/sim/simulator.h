// Trace-driven simulation of the full stack: trace -> DRAM cache -> FTL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_manager.h"
#include "cache/policy_factory.h"
#include "fault/fault.h"
#include "host/overload.h"
#include "host/tenant.h"
#include "core/req_block.h"
#include "ssd/config.h"
#include "ssd/ftl.h"
#include "telemetry/telemetry.h"
#include "trace/io_request.h"
#include "util/histogram.h"
#include "util/types.h"

namespace reqblock {

struct SimOptions {
  SsdConfig ssd = SsdConfig::experiment_default();
  CacheOptions cache;
  PolicyConfig policy;
  /// Log Req-block list occupancy every N requests (paper Fig. 13 uses
  /// 10,000); 0 disables the probe.
  std::uint64_t occupancy_log_interval = 0;
  /// Stop after this many requests (0 = whole trace).
  std::uint64_t max_requests = 0;
  /// Serve this many requests before statistics collection starts (cache
  /// and device state carry over; counters and histograms reset). The
  /// warmup requests do not count toward max_requests.
  std::uint64_t warmup_requests = 0;
  /// Deterministic fault injection for this run. With the default plan
  /// (everything off) the injector is never wired and the run is
  /// bit-identical to a fault-free build.
  FaultPlan fault;
  /// Overload protection: bounded host admission queue with deadlines,
  /// watermark background flushing, and GC-pressure write throttling. All
  /// off by default, leaving runs bit-identical to earlier builds.
  OverloadOptions overload;
  /// Multi-queue host front end: tenant count, arbitration discipline,
  /// per-tenant workload specs. The default single tenant leaves runs
  /// bit-identical to earlier builds.
  TenantOptions tenants;
  /// Event tracing, metric snapshots, and self-profiling for this run.
  TelemetryOptions telemetry;
  /// Let REQBLOCK_TRACE override telemetry.trace.level at Simulator
  /// construction (benches and examples respond to the environment with
  /// zero code; tests that assert specific gating turn this off).
  bool telemetry_env_override = true;
};

/// Everything a single (trace, policy, cache size) run produces.
struct RunResult {
  std::string trace_name;
  std::string policy_name;
  std::uint64_t cache_capacity_pages = 0;

  std::uint64_t requests = 0;
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;

  /// Per-request response time (completion - arrival), ns. Shed requests
  /// never complete, so with an admission deadline configured
  /// response.count() can be below `requests` by exactly overload.sheds.
  LogHistogram response;
  LogHistogram read_response;
  LogHistogram write_response;
  /// Admission wait per admitted request (empty unless the bounded host
  /// queue is enabled), ns. SLO view: p50/p95/p99/p999 of queueing alone.
  LogHistogram queue_wait;

  CacheMetrics cache;
  FlashMetrics flash;
  /// Injected-fault accounting (fault.enabled == false on fault-free runs).
  FaultMetrics fault;
  /// Overload accounting: admissions, timeouts/sheds/retries, throttle
  /// events (enabled == false when the whole subsystem is off).
  OverloadMetrics overload;
  /// Empty on success; run_cases fills it with the case's failure message
  /// instead of tearing the whole experiment down.
  std::string error;
  bool ok() const { return error.empty(); }

  /// Fig. 13 series: one sample per occupancy_log_interval requests.
  std::vector<ListOccupancy> occupancy_series;

  /// Drained events, metric snapshots, and the wall-clock self-profile
  /// (all empty unless SimOptions::telemetry asked for them).
  TelemetryResult telemetry;

  /// Per-request latency attribution (enabled == false, everything empty,
  /// unless telemetry.attribution was on).
  AttributionResult attribution;

  /// Per-tenant slices of this run, in tenant-id order. Empty on
  /// single-tenant runs (the global fields above are the only view).
  std::vector<TenantResult> tenants;

  SimTime sim_end = 0;
  double wall_seconds = 0.0;
  /// Requests served before measurement started.
  std::uint64_t warmup_requests = 0;
  /// Mean busy fraction of the channel buses over the measured window.
  double channel_utilization = 0.0;
  /// Mean busy fraction of the chips over the measured window.
  double chip_utilization = 0.0;

  double hit_ratio() const { return cache.hit_ratio(); }
  double mean_response_ms() const {
    return response.mean() / static_cast<double>(kMillisecond);
  }
  /// Flash programs caused by cache flushes + bypasses (paper Fig. 11's
  /// "write count to flash memory").
  std::uint64_t flash_write_count() const { return flash.host_page_writes; }
};

class Simulator {
 public:
  explicit Simulator(SimOptions options);

  /// Replays the trace once through a freshly constructed device + cache.
  RunResult run(TraceSource& trace);

 private:
  SimOptions options_;
};

/// Convenience: options for one paper-style run.
SimOptions make_sim_options(const std::string& policy_name,
                            std::uint64_t cache_mb,
                            std::uint32_t delta = 5);

/// Cache capacity in pages for a size in MB (4 KB pages).
std::uint64_t cache_pages_for_mb(std::uint64_t mb);

}  // namespace reqblock
