// Checkpoint files and resumable runs.
//
// Three layers ride on the snapshot container (src/snapshot/):
//
//   1. Session checkpoints — `<stem>.ckpt.<sequence>` files holding one
//      SimulationSession mid-run. Written crash-consistently (temp file +
//      fsync + atomic rename), pruned to the newest keep_last per stem, and
//      validated on restore: format version, config fingerprint, and trace
//      identity must all match or the restore refuses loudly.
//
//   2. Stored results — `case_<i>.result` files holding one finished
//      RunResult, so a resumed experiment matrix can emit the exact bytes
//      an uninterrupted one would without re-running finished cases.
//
//   3. The matrix manifest — `manifest` records the matrix fingerprint and
//      which cases completed. run_cases_resumable() consults it on start:
//      finished cases load from disk, the in-flight case resumes from its
//      newest valid checkpoint, untouched cases run from scratch.
//
// Kill a matrix run at any instant and rerun it with the same arguments:
// the final results (and their CSV) are byte-identical to a run that was
// never interrupted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/session.h"

namespace reqblock {

struct CheckpointOptions {
  /// Directory checkpoints/manifest live in (created if missing).
  std::string dir;
  /// Checkpoint after every N served requests (warmup included; 0 = only
  /// record case completion, never mid-case state).
  std::uint64_t every_n_requests = 0;
  /// Newest checkpoints retained per run; older ones are pruned after
  /// each successful save. At least 1.
  std::uint32_t keep_last = 2;
};

/// Writes one checkpoint of `session` as `<dir>/<stem>.ckpt.<served>` and
/// prunes older `<stem>.ckpt.*` files down to `keep_last`. Returns the
/// path written.
std::string save_session_checkpoint(const SimulationSession& session,
                                    const std::string& dir,
                                    const std::string& stem,
                                    std::uint32_t keep_last);

/// Restores `session` (freshly constructed, same options + trace) from a
/// checkpoint file. Throws SnapshotError when the file is corrupt or was
/// taken under a different config/trace; std::runtime_error when it
/// cannot be read.
void restore_session_checkpoint(SimulationSession& session,
                                const std::string& path);

/// Highest-sequence `<stem>.ckpt.*` file under `dir`, or "" when none
/// exists. Files with a malformed sequence suffix are ignored.
std::string find_latest_checkpoint(const std::string& dir,
                                   const std::string& stem);

/// Runs one trace to completion with periodic checkpoints. When
/// `resume_from` is non-empty the session is restored from that file
/// first (it must match `options` and `trace`). With an empty
/// CheckpointOptions::dir this degenerates to Simulator::run.
RunResult run_with_checkpoints(const SimOptions& options, TraceSource& trace,
                               const CheckpointOptions& ckpt,
                               const std::string& resume_from = "");

/// Multi-queue variant: one trace source per tenant (must match
/// options.tenants.count; see SimulationSession's multi-trace ctor).
RunResult run_with_checkpoints(const SimOptions& options,
                               const std::vector<TraceSource*>& tenant_traces,
                               const CheckpointOptions& ckpt,
                               const std::string& resume_from = "");

/// Serialization of a finished RunResult (wall_seconds and the
/// self-profile included — a stored result reproduces everything the
/// report layer prints).
void serialize_run_result(SnapshotWriter& w, const RunResult& result);
void deserialize_run_result(SnapshotReader& r, RunResult& result);

/// Stores/loads one finished result. The header carries the case's config
/// fingerprint and trace identity; load_run_result re-validates both.
void save_run_result(const RunResult& result, const std::string& path,
                     std::uint64_t config_hash, std::uint64_t trace_hash);
RunResult load_run_result(const std::string& path, std::uint64_t config_hash,
                          std::uint64_t trace_hash);

/// Order-sensitive hash over every case's config fingerprint, trace
/// identity, and label. A manifest written under a different matrix hash
/// is refused.
std::uint64_t matrix_fingerprint(const std::vector<ExperimentCase>& cases);

/// Like run_cases, but resumable. Per-case completion is recorded in
/// `<dir>/manifest` (rewritten atomically after every finished case);
/// finished results are stored as `<dir>/case_<i>.result`; the in-flight
/// case checkpoints every `every_n_requests` served requests. On start,
/// completed cases load from disk, a case with checkpoints resumes from
/// the newest one, and everything else runs fresh. Cases run sequentially
/// in index order (resume granularity is one request, and matrices that
/// need resuming are dominated by their longest single runs).
///
/// Throws SnapshotError when the manifest belongs to a different matrix.
std::vector<RunResult> run_cases_resumable(
    const std::vector<ExperimentCase>& cases, const CheckpointOptions& ckpt);

}  // namespace reqblock
