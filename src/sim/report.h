// Formatting of run results into paper-style report tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/table.h"

namespace reqblock {

/// Prints the device configuration block (Table 1 style).
void print_config(std::ostream& os, const SsdConfig& cfg);

/// One row per run: trace, policy, cache, hit%, response, flash writes...
TextTable results_table(const std::vector<RunResult>& results);

/// Summary row cells for a single result (shared by table builders).
std::vector<std::string> result_row(const RunResult& r);

/// Metadata overhead as a percentage of the data-cache capacity (Fig. 12).
double metadata_percent(const RunResult& r);

/// Machine-readable export: one CSV row per run, with a header line.
/// Columns: trace, policy, cache_pages, requests, hit_ratio, mean_ns,
/// p50_ns, p95_ns, p99_ns, p999_ns, flash_writes, flash_reads, gc_moves,
/// erases, waf, pages_per_evict, metadata_pct, channel_util, chip_util.
/// When at least one run injected faults, the fault columns
/// (program_faults .. recovery_ns) are appended; likewise the overload
/// columns (queue_p50_ns .. bg_flush_pages) appear only when some run
/// enabled overload protection, the aging columns
/// (disturb_migrations .. degraded_write_sheds) only when some run's aging
/// counters fired, and the data-integrity columns
/// (ecc_attempts .. integrity_recovery_ns) only when some run saw bit
/// errors or ran the patrol scrubber. Fault-free, overload-free, un-aged,
/// error-free exports keep the historical layout byte for byte.
void write_results_csv(std::ostream& os,
                       const std::vector<RunResult>& results);

/// Fault-injection summary table of one run (counts per fault class and
/// their outcomes). Prints nothing when the run injected no faults.
void write_fault_summary(std::ostream& os, const RunResult& r);

/// Device-aging summary of one run: refresh traffic (read-disturb
/// migrations, retention scrubs), rated-wear crossings, and end-of-life
/// accounting (degraded-mode transitions, shed writes, retired blocks).
/// Prints nothing when the run never aged (FaultMetrics::any_aging()).
void write_aging_summary(std::ostream& os, const RunResult& r);

/// Data-integrity summary of one run: the recovery hierarchy's tier
/// counts (ECC corrections, read-retry rescues, parity rebuilds,
/// uncorrectable losses) and patrol-scrub traffic. Prints nothing when
/// the run saw no bit errors and never scrubbed
/// (IntegrityMetrics::any()).
void write_integrity_summary(std::ostream& os, const RunResult& r);

/// All reliability tables of one run — fault injection, device aging,
/// data integrity — in that fixed order. Drivers print this per result
/// so reports render the same section order no matter which reliability
/// subsystems were enabled; each table still elides itself when its
/// subsystem never fired.
void write_reliability_summary(std::ostream& os, const RunResult& r);

/// Overload-protection summary of one run: admission/SLO accounting
/// (queue-wait percentiles, timeouts, sheds, retries), background-flush
/// volume, and throttle totals. Prints nothing when the whole subsystem
/// was off.
void write_overload_summary(std::ostream& os, const RunResult& r);

/// Wall-clock self-profile of one run: where the simulator itself spent
/// its time (cache serve, flush, FTL dispatch, GC, snapshots). Prints
/// nothing when the run was not profiled.
void write_self_profile(std::ostream& os, const RunResult& r);

/// Compact summary of the metric snapshot series: per-column first, last,
/// min, and max over the run. Prints nothing when no snapshots were taken.
void write_snapshot_summary(std::ostream& os, const RunResult& r);

/// Per-tenant slice of one multi-tenant run: request counts, admission /
/// shed totals, queue-wait and response percentiles. Prints nothing for
/// single-tenant runs (RunResult::tenants empty).
void write_tenant_summary(std::ostream& os, const RunResult& r);

/// Machine-readable per-tenant export: one CSV row per (run, tenant) with
/// integer-ns percentiles and per-component attribution totals. Rows
/// appear only for multi-tenant runs, so single-tenant exports are empty
/// beyond the header.
void write_tenant_csv(std::ostream& os,
                      const std::vector<RunResult>& results);

/// Tail root-cause report: for each run with latency attribution enabled,
/// splits the slowest decile (p90+) and slowest percentile (p99+) of
/// requests into their component time, ranked by contribution. Answers
/// "where did my p99 go?" per trace/policy. Prints nothing when no run
/// carried attribution.
void write_tail_attribution(std::ostream& os,
                            const std::vector<RunResult>& results);

/// Machine-readable tail attribution: one CSV row per (run, slice,
/// component) with integer-ns totals and the component's share of the
/// slice. Byte-stable across runs of the same build; rows appear only for
/// runs with attribution enabled, so attribution-free exports are empty
/// beyond the header.
void write_tail_attribution_csv(std::ostream& os,
                                const std::vector<RunResult>& results);

}  // namespace reqblock
