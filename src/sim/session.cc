#include "sim/session.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/req_block_policy.h"
#include "snapshot/snapshot.h"
#include "util/audit.h"
#include "util/check.h"

namespace reqblock {

std::uint64_t config_fingerprint(const SimOptions& o) {
  Fingerprint fp;
  fp.add_string("sim_options");
  const SsdConfig& s = o.ssd;
  fp.add(s.channels);
  fp.add(s.chips_per_channel);
  fp.add(s.planes_per_chip);
  fp.add(s.pages_per_block);
  fp.add(s.page_size);
  fp.add(s.capacity_bytes);
  fp.add_i64(s.read_latency);
  fp.add_i64(s.program_latency);
  fp.add_i64(s.erase_latency);
  fp.add_i64(s.transfer_per_byte);
  fp.add_i64(s.command_overhead);
  fp.add_i64(s.cache_access_latency);
  fp.add_double(s.gc_free_threshold);
  fp.add(static_cast<std::uint64_t>(s.gc_victim_policy));
  fp.add(s.gc_wear_tie_margin);
  const CacheOptions& c = o.cache;
  fp.add(c.capacity_pages);
  fp.add_bool(c.cache_reads);
  fp.add_bool(c.verify_consistency);
  fp.add(c.metadata_sample_interval);
  fp.add(c.max_tracked_request_pages);
  const PolicyConfig& p = o.policy;
  fp.add_string(p.name);
  fp.add(p.capacity_pages);
  fp.add(p.pages_per_block);
  fp.add(p.reqblock.delta);
  fp.add_bool(p.reqblock.merge_on_evict);
  fp.add(static_cast<std::uint64_t>(p.reqblock.freq_mode));
  fp.add_bool(p.reqblock.colocate_flush);
  fp.add_double(p.vbbms.random_fraction);
  fp.add(p.vbbms.random_vb_pages);
  fp.add(p.vbbms.seq_vb_pages);
  fp.add(p.vbbms.seq_request_threshold);
  fp.add_bool(p.bplru.page_padding);
  fp.add_bool(p.bplru.block_unit_allocation);
  fp.add_double(p.cflru_window);
  fp.add(o.occupancy_log_interval);
  fp.add(o.max_requests);
  fp.add(o.warmup_requests);
  const FaultPlan& f = o.fault;
  fp.add(f.seed);
  fp.add_double(f.program_fail_prob);
  fp.add_double(f.read_fail_prob);
  fp.add_double(f.erase_fail_prob);
  fp.add(f.max_program_retries);
  fp.add_i64(f.retry_backoff);
  fp.add(f.spare_blocks_per_plane);
  fp.add_i64(f.degraded_program_penalty);
  fp.add(f.power_loss_every_requests);
  fp.add_i64(f.power_loss_downtime);
  fp.add_i64(f.recovery_replay_per_page);
  // The aging block folds in only when the plan can alter a run: historical
  // fingerprints (and stored results keyed by them) stay valid, while any
  // aging knob change refuses a mismatched restore.
  const AgingPlan& ag = f.aging;
  if (ag.enabled()) {
    fp.add_string("aging");
    fp.add(ag.rated_pe_cycles);
    fp.add_double(ag.wear_program_fail_max);
    fp.add_double(ag.wear_erase_fail_max);
    fp.add(ag.initial_pe_cycles);
    fp.add(ag.read_disturb_limit);
    fp.add_double(ag.read_disturb_fail_max);
    fp.add_i64(ag.retention_age_limit);
    fp.add_double(ag.retention_fail_max);
    fp.add(ag.eol_free_block_floor);
    fp.add(ag.eol_exit_margin);
    fp.add(ag.eol_spare_floor);
  }
  // Same gating as the aging block: the integrity model folds in only
  // when it can alter a run, so error-free fingerprints (and everything
  // keyed by them) are unchanged from earlier builds.
  const IntegrityPlan& in = f.integrity;
  if (in.enabled()) {
    fp.add_string("integrity");
    fp.add_double(in.rber_base);
    fp.add(in.rber_pe_anchor);
    fp.add_double(in.rber_pe_boost);
    fp.add(in.rber_read_anchor);
    fp.add_double(in.rber_read_boost);
    fp.add_i64(in.rber_age_anchor);
    fp.add_double(in.rber_age_boost);
    fp.add_double(in.ecc_escape);
    fp.add(in.read_retry_steps);
    fp.add_double(in.retry_relief);
    fp.add_i64(in.retry_step_latency);
    fp.add(in.stripe_pages);
    fp.add_bool(in.uncorrectable_shed);
    fp.add(in.scrub_every_requests);
    fp.add_i64(in.scrub_time_budget);
    fp.add_double(in.scrub_rber_threshold);
    fp.add(in.scrub_error_limit);
  }
  const OverloadOptions& ov = o.overload;
  fp.add(ov.queue_depth);
  fp.add_i64(ov.deadline_ns);
  fp.add(static_cast<std::uint64_t>(ov.timeout_action));
  fp.add(ov.max_retries);
  fp.add_i64(ov.retry_backoff_ns);
  fp.add_double(ov.bg_flush_high);
  fp.add_double(ov.bg_flush_low);
  fp.add_bool(ov.throttle);
  fp.add(ov.throttle_headroom_blocks);
  fp.add_i64(ov.throttle_max_delay_ns);
  const TelemetryOptions& t = o.telemetry;
  fp.add(static_cast<std::uint64_t>(t.trace.level));
  fp.add(t.trace.capacity);
  fp.add(t.trace.sample_period);
  fp.add(t.snapshot_every_requests);
  fp.add_i64(t.snapshot_every_ns);
  fp.add_bool(t.profile);
  fp.add_bool(t.attribution);
  // The multi-queue block folds in only when a second tenant exists:
  // historical single-stream fingerprints (and the stored results keyed
  // by them) stay valid, while any multi-tenant knob change refuses a
  // mismatched restore.
  const TenantOptions& tn = o.tenants;
  if (tn.enabled()) {
    fp.add_string("tenants");
    fp.add(tn.count);
    fp.add(static_cast<std::uint64_t>(tn.arbiter));
    fp.add(tn.drr_quantum_pages);
    for (std::uint32_t i = 0; i < tn.count; ++i) {
      const TenantSpec spec = tn.spec(i);
      fp.add(spec.weight);
      fp.add_double(spec.rate);
      fp.add(spec.burst_len);
      fp.add(spec.burst_period);
      fp.add_double(spec.burst_factor);
    }
  }
  return fp.value();
}

SimulationSession::SimulationSession(SimOptions options, TraceSource& trace)
    : options_(std::move(options)) {
  REQB_CHECK_MSG(options_.tenants.count <= 1,
                 "multi-tenant session needs one trace source per tenant");
  init({&trace});
}

SimulationSession::SimulationSession(SimOptions options,
                                     const std::vector<TraceSource*>& traces)
    : options_(std::move(options)) {
  REQB_CHECK_MSG(options_.tenants.count == traces.size(),
                 "tenant count and trace source count must agree");
  init(traces);
}

void SimulationSession::init(const std::vector<TraceSource*>& traces) {
  REQB_CHECK_MSG(!traces.empty(), "session needs at least one trace source");
  options_.ssd.validate();
  REQB_CHECK_MSG(options_.cache.capacity_pages == 0 ||
                     options_.cache.capacity_pages ==
                         options_.policy.capacity_pages,
                 "cache and policy capacity must agree");
  if (options_.telemetry_env_override) {
    options_.telemetry.apply_env();
    options_.telemetry_env_override = false;  // already folded in
  }
  options_.fault.validate();
  options_.overload.validate();
  options_.tenants.validate();
  config_hash_ = config_fingerprint(options_);
  const bool multi = traces.size() > 1;
  if (multi) {
    Fingerprint fp;
    fp.add_string("tenant_traces");
    fp.add(traces.size());
    for (const TraceSource* t : traces) fp.add(t->identity_hash());
    trace_hash_ = fp.value();
  } else {
    trace_hash_ = traces.front()->identity_hash();
  }

  // REQB_LINT_ALLOW(no-wallclock): wall_seconds is operator telemetry;
  // it is excluded from checkpoints, CSVs and the config fingerprint.
  wall_start_ = std::chrono::steady_clock::now();
  ftl_ = std::make_unique<Ftl>(options_.ssd);
  CacheOptions cache_opts = options_.cache;
  cache_opts.capacity_pages = options_.policy.capacity_pages;
  if (options_.overload.bg_flush_enabled()) {
    cache_opts.bg_flush_high_pages =
        options_.overload.high_pages(cache_opts.capacity_pages);
    cache_opts.bg_flush_low_pages =
        options_.overload.low_pages(cache_opts.capacity_pages);
  }
  cache_ = std::make_unique<CacheManager>(cache_opts,
                                          make_policy(options_.policy), *ftl_);
  req_block_ = dynamic_cast<ReqBlockPolicy*>(&cache_->policy());
  if (options_.fault.enabled()) {
    fault_ = std::make_unique<FaultInjector>(options_.fault);
    ftl_->set_fault_injector(fault_.get());
  }
  telemetry_ = std::make_unique<Telemetry>(options_.telemetry);
  cache_->set_telemetry(&telemetry_->trace(), &telemetry_->profiler());
  ftl_->set_telemetry(&telemetry_->trace(), &telemetry_->profiler());

  // Namespace slices: with N tenants the logical space splits into N
  // equal, block-aligned, disjoint ranges (NVMe namespaces). The single
  // tenant keeps the identity mapping (span 0), bit-identical to the
  // historical front end.
  Lpn span = 0;
  if (multi) {
    const Lpn per_tenant = options_.ssd.total_pages() /
                           static_cast<Lpn>(traces.size());
    span = per_tenant - per_tenant % options_.ssd.pages_per_block;
    REQB_CHECK_MSG(span >= options_.ssd.pages_per_block,
                   "device too small for this many tenant namespaces");
  }
  tenants_.resize(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    Tenant& t = tenants_[i];
    t.trace = traces[i];
    t.lpn_span = span;
    t.lpn_base = span * static_cast<Lpn>(i);
    t.queue = std::make_unique<HostAdmissionQueue>(options_.overload);
    t.queue->set_trace(&telemetry_->trace());
    t.queue->set_tenant(static_cast<std::uint16_t>(i));
    t.acct.name = "t";
    t.acct.name += std::to_string(i);
    t.trace->reset();
    for (const auto& [begin, end] : t.trace->preexisting_ranges()) {
      if (span == 0) {
        ftl_->add_preexisting_range(begin, end);
      } else {
        // Fold the range into the tenant's slice the same way requests
        // fold (clamped at the slice end).
        const Lpn b = t.lpn_base + begin % span;
        const Lpn e = std::min(t.lpn_base + span, b + (end - begin));
        ftl_->add_preexisting_range(b, e);
      }
    }
  }
  arbiter_ = make_arbiter(options_.tenants.arbiter, options_.tenants.weights(),
                          options_.tenants.drr_quantum_pages);
  ready_.reserve(tenants_.size());

  if (multi) {
    // "usr_0#t0" + 3 tenants -> "usr_0x3": one stable label per run.
    std::string base = tenants_.front().trace->name();
    const std::string suffix = "#t0";
    if (base.size() > suffix.size() &&
        base.compare(base.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      base.resize(base.size() - suffix.size());
    }
    result_.trace_name = base + "x" + std::to_string(tenants_.size());
  } else {
    result_.trace_name = tenants_.front().trace->name();
  }
  result_.policy_name = cache_->policy().name();
  result_.cache_capacity_pages = cache_opts.capacity_pages;
  if (options_.telemetry.snapshots_enabled()) {
    cache_->register_metrics(telemetry_->registry());
    ftl_->register_metrics(telemetry_->registry());
    result_.telemetry.snapshots.columns = telemetry_->registry().names();
  }
  if (options_.telemetry.attribution) result_.attribution.prepare();
  next_snap_ns_ = options_.telemetry.snapshot_every_ns;
  warmup_channel_busy_.assign(options_.ssd.channels, 0);
  warmup_chip_busy_.assign(options_.ssd.total_chips(), 0);
}

std::size_t SimulationSession::queue_in_flight() const {
  std::size_t total = 0;
  for (const Tenant& t : tenants_) total += t.queue->in_flight();
  return total;
}

std::vector<std::size_t> SimulationSession::tenant_queue_depths() const {
  std::vector<std::size_t> depths;
  depths.reserve(tenants_.size());
  for (const Tenant& t : tenants_) depths.push_back(t.queue->in_flight());
  return depths;
}

void SimulationSession::take_snapshot() {
  const ScopedTimer timer(&telemetry_->profiler(),
                          Profiler::Section::kSnapshot);
  result_.telemetry.snapshots.rows.push_back(
      {result_.requests, result_.sim_end, telemetry_->registry().sample()});
}

void SimulationSession::end_warmup() {
  warmup_done_ = true;
  if (result_.warmup_requests == 0) return;
  cache_->reset_metrics();
  ftl_->reset_metrics();
  if (fault_ != nullptr) fault_->reset_metrics();
  for (Tenant& t : tenants_) {
    t.queue->reset_metrics();
    TenantResult fresh;
    fresh.name = t.acct.name;
    t.acct = std::move(fresh);
  }
  telemetry_->trace().clear();
  telemetry_->profiler().clear();
  for (std::uint32_t c = 0; c < options_.ssd.channels; ++c) {
    warmup_channel_busy_[c] = ftl_->channel_busy(c);
  }
  for (std::uint32_t c = 0; c < options_.ssd.total_chips(); ++c) {
    warmup_chip_busy_[c] = ftl_->chip_busy(c);
  }
  warmup_end_ = last_warmup_arrival_;
}

std::size_t SimulationSession::select_tenant() {
  // Top up every queue's head so arbitration sees the full picture.
  SimTime min_arrival = 0;
  bool any = false;
  for (Tenant& t : tenants_) {
    if (!t.head_valid && !t.exhausted) {
      if (t.trace->next(t.head)) {
        t.head_valid = true;
      } else {
        t.exhausted = true;
      }
    }
    if (t.head_valid && (!any || t.head.arrival < min_arrival)) {
      min_arrival = t.head.arrival;
      any = true;
    }
  }
  if (!any) return kNoTenant;
  // An idle device fast-forwards the arbitration clock to the earliest
  // pending arrival; a busy one arbitrates among everything that arrived
  // while it worked (the completion frontier set by serve paths).
  if (min_arrival > arb_now_) arb_now_ = min_arrival;
  ready_.clear();
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = tenants_[i];
    if (t.head_valid && t.head.arrival <= arb_now_) {
      ready_.push_back({static_cast<std::uint32_t>(i), t.head.pages});
    }
  }
  const std::size_t pick = arbiter_->pick(ready_);
  return ready_[pick].tenant;
}

void SimulationSession::apply_namespace(const Tenant& t,
                                        IoRequest& req) const {
  if (t.lpn_span == 0) return;
  req.lpn = t.lpn_base + req.lpn % t.lpn_span;
  const Lpn room = t.lpn_base + t.lpn_span - req.lpn;
  if (req.pages > room) req.pages = static_cast<std::uint32_t>(room);
}

SimulationSession::ServeOutcome SimulationSession::serve_request(
    IoRequest& req, Tenant& t) {
  // A request arriving while the device recovers from a power loss waits;
  // its latency still counts from the original arrival, so the downtime
  // shows up in the response distribution.
  ServeOutcome out;
  const bool attribute = options_.telemetry.attribution;
  out.host_arrival = req.arrival;
  if (req.arrival < resume_at_) {
    // Waiting out power-loss recovery is fault time by definition.
    out.bd[AttrComponent::kFaultRetry] = resume_at_ - req.arrival;
    req.arrival = resume_at_;
  }
  // End-of-life read-mostly mode: an aged-out device sheds host writes
  // (reads still serve) instead of driving the allocator into an assert.
  // The drop reuses the admission shed path — the request consumed its
  // trace slot and counts as an arrival but never completes — and counts
  // in FaultMetrics::degraded_write_sheds rather than the queue's sheds,
  // keeping the overload identity (timeouts == retries + sheds) intact.
  if (fault_ != nullptr && options_.fault.aging.enabled() && req.is_write() &&
      ftl_->update_degraded_mode(req.arrival)) {
    ++fault_->metrics().degraded_write_sheds;
    out.shed = true;
    out.service_start = req.arrival;
    out.done = req.arrival;
    if (req.arrival > arb_now_) arb_now_ = req.arrival;
    return out;
  }
  // GC-pressure throttle: stretch host writes deterministically when the
  // fullest plane nears the collection threshold, before they compete for
  // a queue slot.
  if (options_.overload.throttle && req.is_write()) {
    const SimTime delay = options_.overload.throttle_delay(
        ftl_->gc_pressure_level(options_.overload.throttle_headroom_blocks));
    if (delay > 0) {
      t.queue->note_throttle(req.arrival, delay);
      req.arrival += delay;
      out.bd[AttrComponent::kThrottle] = delay;
    }
  }
  const HostAdmissionQueue::Admission adm = t.queue->admit(req.arrival);
  if (!adm.admitted) {
    out.shed = true;
    out.service_start = adm.admit_at;
    out.done = adm.admit_at;
    if (adm.admit_at > arb_now_) arb_now_ = adm.admit_at;
    return out;
  }
  req.arrival = adm.admit_at;
  out.wait = adm.wait;
  out.service_start = adm.admit_at;
  out.bd[AttrComponent::kQueueWait] = adm.wait;
  bool data_lost = false;
  out.done = cache_->serve(req, attribute ? &out.bd : nullptr, &data_lost);
  t.queue->complete(out.done);
  // A read that hit an uncorrectable page already paid the full recovery
  // cost on the device; the plan decides what the host sees. Shed: the
  // failure is reported out-of-band (counted in host_reads_lost, kept out
  // of the response histograms). Error (default): the read completes as a
  // host-visible error and stays in the distributions.
  if (data_lost && options_.fault.integrity.uncorrectable_shed) {
    out.shed = true;
  }
  // The completion frontier drives multi-queue eligibility: every head
  // that arrived before this completion now competes for service.
  if (out.done > arb_now_) arb_now_ = out.done;
  if (attribute) {
    // The tentpole invariant: the component spans tile [host_arrival,
    // done] exactly, in integer sim-ns, for every request (warmup
    // included — the decomposition must hold everywhere, not just where
    // it is recorded).
    run_audit("Attribution", AuditLevel::kFull, [&](AuditReport& rep) {
      REQB_AUDIT_MSG(rep, out.bd.sum() == out.done - out.host_arrival,
                     "breakdown sums to " + std::to_string(out.bd.sum()) +
                         " ns, end-to-end latency is " +
                         std::to_string(out.done - out.host_arrival) + " ns");
    });
  }
  return out;
}

void SimulationSession::on_power_loss(SimTime at) {
  for (Tenant& t : tenants_) t.queue->on_power_loss(at, resume_at_);
}

void SimulationSession::maybe_patrol_scrub(SimTime now) {
  const std::uint64_t every = options_.fault.integrity.scrub_every_requests;
  if (fault_ == nullptr || every == 0 || served_ == 0 ||
      served_ % every != 0) {
    return;
  }
  // The pass rides the idle window after this request's completion (the
  // same convention as the watermark flusher and the aging refreshes):
  // it occupies the chip timelines from `now` on, delaying future
  // requests, never the one that triggered it. Cadence on served_ makes
  // the schedule deterministic and resumable — served_ is checkpointed.
  ftl_->patrol_scrub(now);
}

void SimulationSession::serve_measured(IoRequest& req, Tenant& t) {
  const ServeOutcome out = serve_request(req, t);
  const bool multi = tenants_.size() > 1;
  if (out.shed) {
    // A shed request still counts as an arrival (it consumed a trace slot
    // and a queue attempt) but never completes, so it stays out of the
    // response histograms.
    if (req.is_write()) {
      ++result_.write_requests;
    } else {
      ++result_.read_requests;
    }
    if (multi) {
      ++t.acct.requests;
      if (req.is_write()) {
        ++t.acct.write_requests;
      } else {
        ++t.acct.read_requests;
      }
    }
  } else {
    if (options_.overload.queue_enabled()) {
      result_.queue_wait.record(out.wait);
    }
    const SimTime latency = out.done - out.host_arrival;
    result_.response.record(latency);
    if (req.is_write()) {
      ++result_.write_requests;
      result_.write_response.record(latency);
    } else {
      ++result_.read_requests;
      result_.read_response.record(latency);
    }
    if (multi) {
      ++t.acct.requests;
      if (req.is_write()) {
        ++t.acct.write_requests;
      } else {
        ++t.acct.read_requests;
      }
      t.acct.response.record(latency);
      if (options_.overload.queue_enabled()) {
        t.acct.queue_wait.record(out.wait);
      }
    }
    if (options_.telemetry.attribution) {
      result_.attribution.record(out.bd, latency);
      if (multi) {
        ++t.acct.attr_requests;
        for (std::size_t c = 0; c < kAttrComponents; ++c) {
          t.acct.attr_ns[c] += static_cast<std::uint64_t>(out.bd.ns[c]);
        }
      }
      // Span tree for Perfetto: the nonzero components tile
      // [host_arrival, done] in enum order, one lane per component.
      SimTime cursor = out.host_arrival;
      for (std::size_t c = 0; c < kAttrComponents; ++c) {
        const SimTime span = out.bd.ns[c];
        if (span == 0) continue;
        telemetry_->trace().emit({cursor, span, req.lpn, result_.requests,
                                  EventKind::kAttrSpan,
                                  static_cast<std::uint16_t>(c), 0});
        cursor += span;
      }
    }
  }
  ++result_.requests;
  result_.sim_end = std::max(result_.sim_end, out.done);
  ++served_;
  if (fault_ != nullptr && fault_->power_loss_due(served_)) {
    resume_at_ = cache_->power_loss(out.done, *fault_);
    on_power_loss(out.done);
    result_.sim_end = std::max(result_.sim_end, resume_at_);
  }
  maybe_patrol_scrub(std::max(out.done, resume_at_));

  if (req_block_ != nullptr && options_.occupancy_log_interval != 0 &&
      result_.requests % options_.occupancy_log_interval == 0) {
    result_.occupancy_series.push_back(req_block_->occupancy());
  }
  if (options_.telemetry.snapshots_enabled()) {
    const std::uint64_t snap_requests =
        options_.telemetry.snapshot_every_requests;
    const SimTime snap_ns = options_.telemetry.snapshot_every_ns;
    bool due = snap_requests != 0 && result_.requests % snap_requests == 0;
    if (snap_ns != 0 && result_.sim_end >= next_snap_ns_) {
      due = true;
      while (next_snap_ns_ <= result_.sim_end) next_snap_ns_ += snap_ns;
    }
    if (due) take_snapshot();
  }
}

bool SimulationSession::step() {
  REQB_CHECK_MSG(!finalized_, "step() after finish()");
  if (finished_) return false;
  const std::size_t picked = select_tenant();
  if (picked == kNoTenant) {
    // Every trace exhausted. If that happened inside warmup, close the
    // warmup bookkeeping; the measured phase would see no requests.
    if (!warmup_done_) end_warmup();
    finished_ = true;
    return false;
  }
  Tenant& t = tenants_[picked];
  IoRequest req = t.head;
  t.head_valid = false;
  apply_namespace(t, req);
  if (!warmup_done_) {
    if (result_.warmup_requests < options_.warmup_requests) {
      const ServeOutcome out = serve_request(req, t);
      ++result_.warmup_requests;
      ++served_;
      last_warmup_arrival_ = out.service_start;
      if (fault_ != nullptr && fault_->power_loss_due(served_)) {
        resume_at_ = cache_->power_loss(out.done, *fault_);
        on_power_loss(out.done);
      }
      maybe_patrol_scrub(std::max(out.done, resume_at_));
      if (result_.warmup_requests >= options_.warmup_requests) end_warmup();
      return true;
    }
    end_warmup();  // no warmup configured
  }
  if (options_.max_requests != 0 &&
      result_.requests >= options_.max_requests) {
    // Keeps the historical loop shape: the request that trips the cap was
    // already consumed from the trace and is dropped.
    finished_ = true;
    return false;
  }
  serve_measured(req, t);
  return true;
}

RunResult SimulationSession::finish() {
  REQB_CHECK_MSG(!finalized_, "finish() called twice");
  finalized_ = true;
  cache_->finalize();
  // Per-request cache audits run inside CacheManager::serve; the deep
  // device audit is O(mapped pages), so it runs once per replay here.
  run_audit("Ftl (end of run)", AuditLevel::kFull,
            [&](AuditReport& r) { ftl_->audit(r); });

  result_.cache = cache_->metrics();
  result_.flash = ftl_->metrics();
  if (fault_ != nullptr) result_.fault = fault_->metrics();
  // The global overload view sums the per-tenant queues (exactly the
  // single queue's metrics when there is one tenant).
  OverloadMetrics total;
  for (const Tenant& t : tenants_) {
    const OverloadMetrics& m = t.queue->metrics();
    total.admitted += m.admitted;
    total.queued_waits += m.queued_waits;
    total.timeouts += m.timeouts;
    total.sheds += m.sheds;
    total.retries += m.retries;
    total.throttle_events += m.throttle_events;
    total.throttle_delay_total += m.throttle_delay_total;
    total.queue_wait_total += m.queue_wait_total;
  }
  total.enabled = options_.overload.enabled();
  result_.overload = total;
  if (tenants_.size() > 1) {
    result_.tenants.clear();
    for (const Tenant& t : tenants_) {
      TenantResult tr = t.acct;
      tr.overload = t.queue->metrics();
      tr.overload.enabled = options_.overload.enabled();
      result_.tenants.push_back(std::move(tr));
    }
  }
  if (telemetry_->trace().any_enabled()) {
    result_.telemetry.events = telemetry_->trace().drain();
    result_.telemetry.events_emitted = telemetry_->trace().emitted();
    result_.telemetry.events_dropped = telemetry_->trace().dropped();
    result_.telemetry.events_sampled_out = telemetry_->trace().sampled_out();
  }
  result_.telemetry.profile = profile_report(telemetry_->profiler());
  if (result_.sim_end > warmup_end_) {
    double ch_busy = 0.0, chip_busy = 0.0;
    for (std::uint32_t c = 0; c < options_.ssd.channels; ++c) {
      ch_busy += static_cast<double>(ftl_->channel_busy(c) -
                                     warmup_channel_busy_[c]);
    }
    for (std::uint32_t c = 0; c < options_.ssd.total_chips(); ++c) {
      chip_busy +=
          static_cast<double>(ftl_->chip_busy(c) - warmup_chip_busy_[c]);
    }
    const double span = static_cast<double>(result_.sim_end - warmup_end_);
    result_.channel_utilization = ch_busy / (span * options_.ssd.channels);
    result_.chip_utilization = chip_busy / (span * options_.ssd.total_chips());
  }
  // REQB_LINT_ALLOW(no-wallclock): see wall_start_ — operator telemetry.
  result_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start_)
          .count();
  return std::move(result_);
}

void SimulationSession::serialize(SnapshotWriter& w) const {
  REQB_CHECK_MSG(!finalized_, "serialize() after finish()");
  w.tag("session");
  w.u64(served_);
  w.u64(result_.warmup_requests);
  w.b(warmup_done_);
  w.b(finished_);
  w.i64(resume_at_);
  w.i64(next_snap_ns_);
  w.i64(last_warmup_arrival_);
  w.i64(warmup_end_);
  w.i64(arb_now_);
  w.u64(warmup_channel_busy_.size());
  for (const SimTime t : warmup_channel_busy_) w.i64(t);
  w.u64(warmup_chip_busy_.size());
  for (const SimTime t : warmup_chip_busy_) w.i64(t);

  // Partial result accumulators.
  w.tag("partial_result");
  w.u64(result_.requests);
  w.u64(result_.read_requests);
  w.u64(result_.write_requests);
  reqblock::serialize(w, result_.response);
  reqblock::serialize(w, result_.read_response);
  reqblock::serialize(w, result_.write_response);
  reqblock::serialize(w, result_.queue_wait);
  w.i64(result_.sim_end);
  w.u64(result_.occupancy_series.size());
  for (const ListOccupancy& occ : result_.occupancy_series) {
    w.u64(occ.irl_pages);
    w.u64(occ.srl_pages);
    w.u64(occ.drl_pages);
    w.u64(occ.irl_blocks);
    w.u64(occ.srl_blocks);
    w.u64(occ.drl_blocks);
  }
  result_.telemetry.snapshots.serialize(w);
  result_.attribution.serialize(w);

  // Per-tenant front end: trace cursor, pre-pulled head (the cursor has
  // already advanced past it, so it must travel with the snapshot),
  // admission queue, and accounting — then the arbiter's dynamic state.
  w.tag("tenants");
  w.u64(tenants_.size());
  for (const Tenant& t : tenants_) {
    w.tag("tenant");
    w.b(t.head_valid);
    w.b(t.exhausted);
    w.u64(t.head.id);
    w.i64(t.head.arrival);
    w.u8(static_cast<std::uint8_t>(t.head.type));
    w.u64(t.head.lpn);
    w.u64(t.head.pages);
    t.acct.serialize(w);
    t.queue->serialize(w);
    t.trace->serialize(w);
  }
  arbiter_->serialize(w);

  // Layers, outermost first.
  cache_->serialize(w);
  ftl_->serialize(w);
  w.b(fault_ != nullptr);
  if (fault_ != nullptr) fault_->serialize(w);
  telemetry_->trace().serialize(w);
}

void SimulationSession::deserialize(SnapshotReader& r) {
  REQB_CHECK_MSG(served_ == 0 && !finalized_,
                 "deserialize into a non-fresh session");
  r.tag("session");
  served_ = r.u64();
  result_.warmup_requests = r.u64();
  warmup_done_ = r.b();
  finished_ = r.b();
  resume_at_ = r.i64();
  next_snap_ns_ = r.i64();
  last_warmup_arrival_ = r.i64();
  warmup_end_ = r.i64();
  arb_now_ = r.i64();
  if (r.u64() != warmup_channel_busy_.size()) {
    throw SnapshotError("session snapshot has a different channel count");
  }
  for (SimTime& t : warmup_channel_busy_) t = r.i64();
  if (r.u64() != warmup_chip_busy_.size()) {
    throw SnapshotError("session snapshot has a different chip count");
  }
  for (SimTime& t : warmup_chip_busy_) t = r.i64();

  r.tag("partial_result");
  result_.requests = r.u64();
  result_.read_requests = r.u64();
  result_.write_requests = r.u64();
  reqblock::deserialize(r, result_.response);
  reqblock::deserialize(r, result_.read_response);
  reqblock::deserialize(r, result_.write_response);
  reqblock::deserialize(r, result_.queue_wait);
  result_.sim_end = r.i64();
  const std::uint64_t occ_count = r.count(48);
  result_.occupancy_series.clear();
  result_.occupancy_series.reserve(occ_count);
  for (std::uint64_t i = 0; i < occ_count; ++i) {
    ListOccupancy occ;
    occ.irl_pages = r.u64();
    occ.srl_pages = r.u64();
    occ.drl_pages = r.u64();
    occ.irl_blocks = r.u64();
    occ.srl_blocks = r.u64();
    occ.drl_blocks = r.u64();
    result_.occupancy_series.push_back(occ);
  }
  result_.telemetry.snapshots.deserialize(r);
  result_.attribution.deserialize(r);
  if (result_.attribution.enabled != options_.telemetry.attribution) {
    throw SnapshotError(
        "session snapshot disagrees about latency attribution being on");
  }

  r.tag("tenants");
  if (r.u64() != tenants_.size()) {
    throw SnapshotError("session snapshot has a different tenant count");
  }
  for (Tenant& t : tenants_) {
    r.tag("tenant");
    t.head_valid = r.b();
    t.exhausted = r.b();
    t.head.id = r.u64();
    t.head.arrival = r.i64();
    const std::uint8_t type = r.u8();
    if (type > static_cast<std::uint8_t>(IoType::kWrite)) {
      throw SnapshotError("tenant snapshot has an unknown request type");
    }
    t.head.type = static_cast<IoType>(type);
    t.head.lpn = r.u64();
    t.head.pages = static_cast<std::uint32_t>(r.u64());
    t.acct.deserialize(r);
    t.queue->deserialize(r);
    t.trace->deserialize(r);
  }
  arbiter_->deserialize(r);

  cache_->deserialize(r);
  ftl_->deserialize(r);
  const bool had_fault = r.b();
  if (had_fault != (fault_ != nullptr)) {
    throw SnapshotError(
        "session snapshot disagrees about fault injection being wired");
  }
  if (fault_ != nullptr) fault_->deserialize(r);
  telemetry_->trace().deserialize(r);
}

}  // namespace reqblock
