#include "sim/session.h"

#include <algorithm>
#include <utility>

#include "core/req_block_policy.h"
#include "snapshot/snapshot.h"
#include "util/audit.h"
#include "util/check.h"

namespace reqblock {

std::uint64_t config_fingerprint(const SimOptions& o) {
  Fingerprint fp;
  fp.add_string("sim_options");
  const SsdConfig& s = o.ssd;
  fp.add(s.channels);
  fp.add(s.chips_per_channel);
  fp.add(s.planes_per_chip);
  fp.add(s.pages_per_block);
  fp.add(s.page_size);
  fp.add(s.capacity_bytes);
  fp.add_i64(s.read_latency);
  fp.add_i64(s.program_latency);
  fp.add_i64(s.erase_latency);
  fp.add_i64(s.transfer_per_byte);
  fp.add_i64(s.command_overhead);
  fp.add_i64(s.cache_access_latency);
  fp.add_double(s.gc_free_threshold);
  fp.add(static_cast<std::uint64_t>(s.gc_victim_policy));
  fp.add(s.gc_wear_tie_margin);
  const CacheOptions& c = o.cache;
  fp.add(c.capacity_pages);
  fp.add_bool(c.cache_reads);
  fp.add_bool(c.verify_consistency);
  fp.add(c.metadata_sample_interval);
  fp.add(c.max_tracked_request_pages);
  const PolicyConfig& p = o.policy;
  fp.add_string(p.name);
  fp.add(p.capacity_pages);
  fp.add(p.pages_per_block);
  fp.add(p.reqblock.delta);
  fp.add_bool(p.reqblock.merge_on_evict);
  fp.add(static_cast<std::uint64_t>(p.reqblock.freq_mode));
  fp.add_bool(p.reqblock.colocate_flush);
  fp.add_double(p.vbbms.random_fraction);
  fp.add(p.vbbms.random_vb_pages);
  fp.add(p.vbbms.seq_vb_pages);
  fp.add(p.vbbms.seq_request_threshold);
  fp.add_bool(p.bplru.page_padding);
  fp.add_bool(p.bplru.block_unit_allocation);
  fp.add_double(p.cflru_window);
  fp.add(o.occupancy_log_interval);
  fp.add(o.max_requests);
  fp.add(o.warmup_requests);
  const FaultPlan& f = o.fault;
  fp.add(f.seed);
  fp.add_double(f.program_fail_prob);
  fp.add_double(f.read_fail_prob);
  fp.add_double(f.erase_fail_prob);
  fp.add(f.max_program_retries);
  fp.add_i64(f.retry_backoff);
  fp.add(f.spare_blocks_per_plane);
  fp.add_i64(f.degraded_program_penalty);
  fp.add(f.power_loss_every_requests);
  fp.add_i64(f.power_loss_downtime);
  fp.add_i64(f.recovery_replay_per_page);
  const OverloadOptions& ov = o.overload;
  fp.add(ov.queue_depth);
  fp.add_i64(ov.deadline_ns);
  fp.add(static_cast<std::uint64_t>(ov.timeout_action));
  fp.add(ov.max_retries);
  fp.add_i64(ov.retry_backoff_ns);
  fp.add_double(ov.bg_flush_high);
  fp.add_double(ov.bg_flush_low);
  fp.add_bool(ov.throttle);
  fp.add(ov.throttle_headroom_blocks);
  fp.add_i64(ov.throttle_max_delay_ns);
  const TelemetryOptions& t = o.telemetry;
  fp.add(static_cast<std::uint64_t>(t.trace.level));
  fp.add(t.trace.capacity);
  fp.add(t.trace.sample_period);
  fp.add(t.snapshot_every_requests);
  fp.add_i64(t.snapshot_every_ns);
  fp.add_bool(t.profile);
  fp.add_bool(t.attribution);
  return fp.value();
}

SimulationSession::SimulationSession(SimOptions options, TraceSource& trace)
    : options_(std::move(options)), trace_(trace) {
  options_.ssd.validate();
  REQB_CHECK_MSG(options_.cache.capacity_pages == 0 ||
                     options_.cache.capacity_pages ==
                         options_.policy.capacity_pages,
                 "cache and policy capacity must agree");
  if (options_.telemetry_env_override) {
    options_.telemetry.apply_env();
    options_.telemetry_env_override = false;  // already folded in
  }
  options_.fault.validate();
  options_.overload.validate();
  config_hash_ = config_fingerprint(options_);
  trace_hash_ = trace_.identity_hash();

  // REQB_LINT_ALLOW(no-wallclock): wall_seconds is operator telemetry;
  // it is excluded from checkpoints, CSVs and the config fingerprint.
  wall_start_ = std::chrono::steady_clock::now();
  ftl_ = std::make_unique<Ftl>(options_.ssd);
  for (const auto& [begin, end] : trace_.preexisting_ranges()) {
    ftl_->add_preexisting_range(begin, end);
  }
  CacheOptions cache_opts = options_.cache;
  cache_opts.capacity_pages = options_.policy.capacity_pages;
  if (options_.overload.bg_flush_enabled()) {
    cache_opts.bg_flush_high_pages =
        options_.overload.high_pages(cache_opts.capacity_pages);
    cache_opts.bg_flush_low_pages =
        options_.overload.low_pages(cache_opts.capacity_pages);
  }
  cache_ = std::make_unique<CacheManager>(cache_opts,
                                          make_policy(options_.policy), *ftl_);
  req_block_ = dynamic_cast<ReqBlockPolicy*>(&cache_->policy());
  if (options_.fault.enabled()) {
    fault_ = std::make_unique<FaultInjector>(options_.fault);
    ftl_->set_fault_injector(fault_.get());
  }
  telemetry_ = std::make_unique<Telemetry>(options_.telemetry);
  cache_->set_telemetry(&telemetry_->trace(), &telemetry_->profiler());
  ftl_->set_telemetry(&telemetry_->trace(), &telemetry_->profiler());
  queue_ = std::make_unique<HostAdmissionQueue>(options_.overload);
  queue_->set_trace(&telemetry_->trace());

  result_.trace_name = trace_.name();
  result_.policy_name = cache_->policy().name();
  result_.cache_capacity_pages = cache_opts.capacity_pages;
  if (options_.telemetry.snapshots_enabled()) {
    cache_->register_metrics(telemetry_->registry());
    ftl_->register_metrics(telemetry_->registry());
    result_.telemetry.snapshots.columns = telemetry_->registry().names();
  }
  if (options_.telemetry.attribution) result_.attribution.prepare();
  next_snap_ns_ = options_.telemetry.snapshot_every_ns;
  warmup_channel_busy_.assign(options_.ssd.channels, 0);
  warmup_chip_busy_.assign(options_.ssd.total_chips(), 0);

  trace_.reset();
}

void SimulationSession::take_snapshot() {
  const ScopedTimer timer(&telemetry_->profiler(),
                          Profiler::Section::kSnapshot);
  result_.telemetry.snapshots.rows.push_back(
      {result_.requests, result_.sim_end, telemetry_->registry().sample()});
}

void SimulationSession::end_warmup() {
  warmup_done_ = true;
  if (result_.warmup_requests == 0) return;
  cache_->reset_metrics();
  ftl_->reset_metrics();
  if (fault_ != nullptr) fault_->reset_metrics();
  queue_->reset_metrics();
  telemetry_->trace().clear();
  telemetry_->profiler().clear();
  for (std::uint32_t c = 0; c < options_.ssd.channels; ++c) {
    warmup_channel_busy_[c] = ftl_->channel_busy(c);
  }
  for (std::uint32_t c = 0; c < options_.ssd.total_chips(); ++c) {
    warmup_chip_busy_[c] = ftl_->chip_busy(c);
  }
  warmup_end_ = last_warmup_arrival_;
}

SimulationSession::ServeOutcome SimulationSession::serve_request(
    IoRequest& req) {
  // A request arriving while the device recovers from a power loss waits;
  // its latency still counts from the original arrival, so the downtime
  // shows up in the response distribution.
  ServeOutcome out;
  const bool attribute = options_.telemetry.attribution;
  out.host_arrival = req.arrival;
  if (req.arrival < resume_at_) {
    // Waiting out power-loss recovery is fault time by definition.
    out.bd[AttrComponent::kFaultRetry] = resume_at_ - req.arrival;
    req.arrival = resume_at_;
  }
  // GC-pressure throttle: stretch host writes deterministically when the
  // fullest plane nears the collection threshold, before they compete for
  // a queue slot.
  if (options_.overload.throttle && req.is_write()) {
    const SimTime delay = options_.overload.throttle_delay(
        ftl_->gc_pressure_level(options_.overload.throttle_headroom_blocks));
    if (delay > 0) {
      queue_->note_throttle(req.arrival, delay);
      req.arrival += delay;
      out.bd[AttrComponent::kThrottle] = delay;
    }
  }
  const HostAdmissionQueue::Admission adm = queue_->admit(req.arrival);
  if (!adm.admitted) {
    out.shed = true;
    out.service_start = adm.admit_at;
    out.done = adm.admit_at;
    return out;
  }
  req.arrival = adm.admit_at;
  out.wait = adm.wait;
  out.service_start = adm.admit_at;
  out.bd[AttrComponent::kQueueWait] = adm.wait;
  out.done = cache_->serve(req, attribute ? &out.bd : nullptr);
  queue_->complete(out.done);
  if (attribute) {
    // The tentpole invariant: the component spans tile [host_arrival,
    // done] exactly, in integer sim-ns, for every request (warmup
    // included — the decomposition must hold everywhere, not just where
    // it is recorded).
    run_audit("Attribution", AuditLevel::kFull, [&](AuditReport& rep) {
      REQB_AUDIT_MSG(rep, out.bd.sum() == out.done - out.host_arrival,
                     "breakdown sums to " + std::to_string(out.bd.sum()) +
                         " ns, end-to-end latency is " +
                         std::to_string(out.done - out.host_arrival) + " ns");
    });
  }
  return out;
}

void SimulationSession::serve_measured(IoRequest& req) {
  const ServeOutcome out = serve_request(req);
  if (out.shed) {
    // A shed request still counts as an arrival (it consumed a trace slot
    // and a queue attempt) but never completes, so it stays out of the
    // response histograms.
    if (req.is_write()) {
      ++result_.write_requests;
    } else {
      ++result_.read_requests;
    }
  } else {
    if (options_.overload.queue_enabled()) {
      result_.queue_wait.record(out.wait);
    }
    const SimTime latency = out.done - out.host_arrival;
    result_.response.record(latency);
    if (req.is_write()) {
      ++result_.write_requests;
      result_.write_response.record(latency);
    } else {
      ++result_.read_requests;
      result_.read_response.record(latency);
    }
    if (options_.telemetry.attribution) {
      result_.attribution.record(out.bd, latency);
      // Span tree for Perfetto: the nonzero components tile
      // [host_arrival, done] in enum order, one lane per component.
      SimTime cursor = out.host_arrival;
      for (std::size_t c = 0; c < kAttrComponents; ++c) {
        const SimTime span = out.bd.ns[c];
        if (span == 0) continue;
        telemetry_->trace().emit({cursor, span, req.lpn, result_.requests,
                                  EventKind::kAttrSpan,
                                  static_cast<std::uint16_t>(c), 0});
        cursor += span;
      }
    }
  }
  ++result_.requests;
  result_.sim_end = std::max(result_.sim_end, out.done);
  ++served_;
  if (fault_ != nullptr && fault_->power_loss_due(served_)) {
    resume_at_ = cache_->power_loss(out.done, *fault_);
    queue_->on_power_loss(out.done, resume_at_);
    result_.sim_end = std::max(result_.sim_end, resume_at_);
  }

  if (req_block_ != nullptr && options_.occupancy_log_interval != 0 &&
      result_.requests % options_.occupancy_log_interval == 0) {
    result_.occupancy_series.push_back(req_block_->occupancy());
  }
  if (options_.telemetry.snapshots_enabled()) {
    const std::uint64_t snap_requests =
        options_.telemetry.snapshot_every_requests;
    const SimTime snap_ns = options_.telemetry.snapshot_every_ns;
    bool due = snap_requests != 0 && result_.requests % snap_requests == 0;
    if (snap_ns != 0 && result_.sim_end >= next_snap_ns_) {
      due = true;
      while (next_snap_ns_ <= result_.sim_end) next_snap_ns_ += snap_ns;
    }
    if (due) take_snapshot();
  }
}

bool SimulationSession::step() {
  REQB_CHECK_MSG(!finalized_, "step() after finish()");
  if (finished_) return false;
  IoRequest req;
  if (!warmup_done_) {
    if (result_.warmup_requests < options_.warmup_requests) {
      if (!trace_.next(req)) {
        // Trace exhausted inside warmup: close warmup bookkeeping; the
        // measured phase would see an empty trace immediately.
        end_warmup();
        finished_ = true;
        return false;
      }
      const ServeOutcome out = serve_request(req);
      ++result_.warmup_requests;
      ++served_;
      last_warmup_arrival_ = out.service_start;
      if (fault_ != nullptr && fault_->power_loss_due(served_)) {
        resume_at_ = cache_->power_loss(out.done, *fault_);
        queue_->on_power_loss(out.done, resume_at_);
      }
      if (result_.warmup_requests >= options_.warmup_requests) end_warmup();
      return true;
    }
    end_warmup();  // no warmup configured
  }
  if (!trace_.next(req)) {
    finished_ = true;
    return false;
  }
  if (options_.max_requests != 0 &&
      result_.requests >= options_.max_requests) {
    // Keeps the historical loop shape: the request that trips the cap was
    // already consumed from the trace and is dropped.
    finished_ = true;
    return false;
  }
  serve_measured(req);
  return true;
}

RunResult SimulationSession::finish() {
  REQB_CHECK_MSG(!finalized_, "finish() called twice");
  finalized_ = true;
  cache_->finalize();
  // Per-request cache audits run inside CacheManager::serve; the deep
  // device audit is O(mapped pages), so it runs once per replay here.
  run_audit("Ftl (end of run)", AuditLevel::kFull,
            [&](AuditReport& r) { ftl_->audit(r); });

  result_.cache = cache_->metrics();
  result_.flash = ftl_->metrics();
  if (fault_ != nullptr) result_.fault = fault_->metrics();
  result_.overload = queue_->metrics();
  result_.overload.enabled = options_.overload.enabled();
  if (telemetry_->trace().any_enabled()) {
    result_.telemetry.events = telemetry_->trace().drain();
    result_.telemetry.events_emitted = telemetry_->trace().emitted();
    result_.telemetry.events_dropped = telemetry_->trace().dropped();
    result_.telemetry.events_sampled_out = telemetry_->trace().sampled_out();
  }
  result_.telemetry.profile = profile_report(telemetry_->profiler());
  if (result_.sim_end > warmup_end_) {
    double ch_busy = 0.0, chip_busy = 0.0;
    for (std::uint32_t c = 0; c < options_.ssd.channels; ++c) {
      ch_busy += static_cast<double>(ftl_->channel_busy(c) -
                                     warmup_channel_busy_[c]);
    }
    for (std::uint32_t c = 0; c < options_.ssd.total_chips(); ++c) {
      chip_busy +=
          static_cast<double>(ftl_->chip_busy(c) - warmup_chip_busy_[c]);
    }
    const double span = static_cast<double>(result_.sim_end - warmup_end_);
    result_.channel_utilization = ch_busy / (span * options_.ssd.channels);
    result_.chip_utilization = chip_busy / (span * options_.ssd.total_chips());
  }
  // REQB_LINT_ALLOW(no-wallclock): see wall_start_ — operator telemetry.
  result_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start_)
          .count();
  return std::move(result_);
}

void SimulationSession::serialize(SnapshotWriter& w) const {
  REQB_CHECK_MSG(!finalized_, "serialize() after finish()");
  w.tag("session");
  w.u64(served_);
  w.u64(result_.warmup_requests);
  w.b(warmup_done_);
  w.b(finished_);
  w.i64(resume_at_);
  w.i64(next_snap_ns_);
  w.i64(last_warmup_arrival_);
  w.i64(warmup_end_);
  w.u64(warmup_channel_busy_.size());
  for (const SimTime t : warmup_channel_busy_) w.i64(t);
  w.u64(warmup_chip_busy_.size());
  for (const SimTime t : warmup_chip_busy_) w.i64(t);

  // Partial result accumulators.
  w.tag("partial_result");
  w.u64(result_.requests);
  w.u64(result_.read_requests);
  w.u64(result_.write_requests);
  reqblock::serialize(w, result_.response);
  reqblock::serialize(w, result_.read_response);
  reqblock::serialize(w, result_.write_response);
  reqblock::serialize(w, result_.queue_wait);
  w.i64(result_.sim_end);
  w.u64(result_.occupancy_series.size());
  for (const ListOccupancy& occ : result_.occupancy_series) {
    w.u64(occ.irl_pages);
    w.u64(occ.srl_pages);
    w.u64(occ.drl_pages);
    w.u64(occ.irl_blocks);
    w.u64(occ.srl_blocks);
    w.u64(occ.drl_blocks);
  }
  result_.telemetry.snapshots.serialize(w);
  result_.attribution.serialize(w);

  // Layers, outermost first.
  trace_.serialize(w);
  cache_->serialize(w);
  ftl_->serialize(w);
  w.b(fault_ != nullptr);
  if (fault_ != nullptr) fault_->serialize(w);
  queue_->serialize(w);
  telemetry_->trace().serialize(w);
}

void SimulationSession::deserialize(SnapshotReader& r) {
  REQB_CHECK_MSG(served_ == 0 && !finalized_,
                 "deserialize into a non-fresh session");
  r.tag("session");
  served_ = r.u64();
  result_.warmup_requests = r.u64();
  warmup_done_ = r.b();
  finished_ = r.b();
  resume_at_ = r.i64();
  next_snap_ns_ = r.i64();
  last_warmup_arrival_ = r.i64();
  warmup_end_ = r.i64();
  if (r.u64() != warmup_channel_busy_.size()) {
    throw SnapshotError("session snapshot has a different channel count");
  }
  for (SimTime& t : warmup_channel_busy_) t = r.i64();
  if (r.u64() != warmup_chip_busy_.size()) {
    throw SnapshotError("session snapshot has a different chip count");
  }
  for (SimTime& t : warmup_chip_busy_) t = r.i64();

  r.tag("partial_result");
  result_.requests = r.u64();
  result_.read_requests = r.u64();
  result_.write_requests = r.u64();
  reqblock::deserialize(r, result_.response);
  reqblock::deserialize(r, result_.read_response);
  reqblock::deserialize(r, result_.write_response);
  reqblock::deserialize(r, result_.queue_wait);
  result_.sim_end = r.i64();
  const std::uint64_t occ_count = r.count(48);
  result_.occupancy_series.clear();
  result_.occupancy_series.reserve(occ_count);
  for (std::uint64_t i = 0; i < occ_count; ++i) {
    ListOccupancy occ;
    occ.irl_pages = r.u64();
    occ.srl_pages = r.u64();
    occ.drl_pages = r.u64();
    occ.irl_blocks = r.u64();
    occ.srl_blocks = r.u64();
    occ.drl_blocks = r.u64();
    result_.occupancy_series.push_back(occ);
  }
  result_.telemetry.snapshots.deserialize(r);
  result_.attribution.deserialize(r);
  if (result_.attribution.enabled != options_.telemetry.attribution) {
    throw SnapshotError(
        "session snapshot disagrees about latency attribution being on");
  }

  trace_.deserialize(r);
  cache_->deserialize(r);
  ftl_->deserialize(r);
  const bool had_fault = r.b();
  if (had_fault != (fault_ != nullptr)) {
    throw SnapshotError(
        "session snapshot disagrees about fault injection being wired");
  }
  if (fault_ != nullptr) fault_->deserialize(r);
  queue_->deserialize(r);
  telemetry_->trace().deserialize(r);
}

}  // namespace reqblock
