// Stepwise, checkpointable simulation of one run.
//
// SimulationSession is Simulator::run unrolled into an object: construct
// it around a trace (or one trace per tenant), call step() once per
// request, then finish() to close the run and collect the RunResult. The
// stepped form exists so a long run can be checkpointed between any two
// requests — serialize() captures every piece of state the next step
// depends on (cache + policy, FTL + flash array, fault-injector RNG
// stream, per-tenant trace cursors and pre-pulled heads, admission
// queues, arbiter state, partial result accumulators, telemetry
// buffers), and a session deserialized from that snapshot continues the
// run bit-for-bit as if it had never stopped.
//
// Multi-queue front end: with N > 1 tenants each trace source feeds its
// own submission queue bound to a disjoint slice of the logical address
// space, and an Arbiter (see host/arbiter.h) picks which queue's head
// request is served next. Eligibility is driven by a monotone
// arbitration clock: a head whose arrival is at or before the latest
// completion frontier is "ready" (it had arrived while the device was
// busy); when no head is ready the clock jumps to the earliest arrival.
// Ties break deterministically — the ready list is ordered by tenant id
// and every arbiter resolves cyclic ties toward the lowest tenant next
// in order — so equal configurations replay byte-identical runs at any
// thread count. A single-tenant session degenerates to serving the trace
// in order, bit-identical to the historical single-stream loop.
//
// What is deliberately NOT checkpointed:
//   * wall-clock accounting — RunResult::wall_seconds of a resumed run
//     covers only the resumed segment (wall time is not simulated state
//     and never feeds a results CSV);
//   * the self-profiler — same reason, same consumer.
//
// Identity: a snapshot embeds config_fingerprint(options) and the
// trace's identity_hash() (for multi-tenant runs, a fingerprint over
// every tenant stream's identity). Restoring against a session built
// from different options or different traces throws SnapshotError
// instead of silently producing a franken-run.
#pragma once

#include <cstdint>
#include <chrono>
#include <memory>
#include <vector>

#include "host/arbiter.h"
#include "sim/simulator.h"

namespace reqblock {

class SnapshotReader;
class SnapshotWriter;

/// Stable hash over every option field that affects a run's results:
/// device geometry and timing, cache and policy configuration, warmup and
/// request caps, the fault plan, the telemetry options, and — only when
/// more than one tenant is configured — the multi-queue front end (count,
/// arbiter, per-tenant specs). Single-tenant fingerprints are unchanged
/// from earlier builds, so stored single-stream results stay loadable.
/// Two SimOptions with equal fingerprints drive byte-identical runs of
/// the same trace(s).
std::uint64_t config_fingerprint(const SimOptions& options);

class SimulationSession {
 public:
  /// Builds the full stack (device, cache, fault wiring, telemetry) and
  /// resets the trace to its first request. Mirrors Simulator's option
  /// validation, including the REQBLOCK_TRACE env override. Requires
  /// options.tenants.count == 1 (the classic single-stream front end).
  SimulationSession(SimOptions options, TraceSource& trace);

  /// Multi-queue front end: one trace source per tenant (the sources must
  /// outlive the session), each bound to its own submission queue and
  /// namespace slice. Requires options.tenants.count == traces.size().
  SimulationSession(SimOptions options,
                    const std::vector<TraceSource*>& traces);

  /// Serves the next request (warmup or measured). Returns false when the
  /// run is complete — every trace exhausted or max_requests reached —
  /// after which step() keeps returning false.
  bool step();

  bool done() const { return finished_; }
  /// Requests served so far, warmup + measured (the checkpoint cadence
  /// counter).
  std::uint64_t served() const { return served_; }
  /// Measured (post-warmup) requests served so far.
  std::uint64_t measured_requests() const { return result_.requests; }
  /// Host-queue commands currently in flight across all tenants (0 when
  /// admission control is off). Lets callers checkpoint "mid-burst with a
  /// non-empty queue".
  std::size_t queue_in_flight() const;
  /// Per-tenant in-flight command counts, in tenant-id order.
  std::vector<std::size_t> tenant_queue_depths() const;

  /// Finalizes the run (drains telemetry, runs the device audit, computes
  /// utilization) and returns the result. Call exactly once, after step()
  /// returned false.
  RunResult finish();

  /// The effective options (after env overrides) this session runs with.
  const SimOptions& options() const { return options_; }
  /// config_fingerprint(options()) — embedded in checkpoints.
  std::uint64_t config_hash() const { return config_hash_; }
  /// The trace's content identity — embedded in checkpoints. Multi-tenant
  /// sessions fingerprint every tenant stream's identity in order.
  std::uint64_t trace_hash() const { return trace_hash_; }

  /// Checkpoint every piece of state the next step() depends on. The
  /// target of deserialize() must be a freshly constructed session over
  /// the same options and trace(s); identity is the caller's contract
  /// here (checkpoint files carry the fingerprints — see
  /// sim/checkpoint.h).
  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);

 private:
  /// One submission queue: its trace source, namespace slice, admission
  /// queue, the pre-pulled head request, and per-tenant accounting.
  struct Tenant {
    TraceSource* trace = nullptr;
    Lpn lpn_base = 0;
    /// Pages in this tenant's namespace slice; 0 = identity mapping (the
    /// single-tenant front end owns the whole device).
    Lpn lpn_span = 0;
    std::unique_ptr<HostAdmissionQueue> queue;
    IoRequest head;
    bool head_valid = false;
    bool exhausted = false;
    TenantResult acct;
  };

  /// What one trip through throttle -> admission -> cache service produced.
  /// On a shed, `done` is the attempt time (nothing was served) and `wait`
  /// is meaningless.
  struct ServeOutcome {
    bool shed = false;
    SimTime done = 0;          // completion (or final attempt time on shed)
    SimTime host_arrival = 0;  // arrival before recovery/throttle/queueing
    SimTime wait = 0;          // admission-queue wait
    SimTime service_start = 0;  // when the cache (or shed check) saw it
    /// Component split of [host_arrival, done]; filled (and exact-sum
    /// audited at kFull) only when telemetry.attribution is on.
    RequestBreakdown bd;
  };

  static constexpr std::size_t kNoTenant = static_cast<std::size_t>(-1);

  void init(const std::vector<TraceSource*>& traces);
  /// Pulls missing heads, advances the arbitration clock, and asks the
  /// arbiter to choose among the ready heads. Returns kNoTenant when all
  /// traces are exhausted.
  std::size_t select_tenant();
  /// Folds the request into the tenant's namespace slice (no-op when
  /// lpn_span == 0).
  void apply_namespace(const Tenant& t, IoRequest& req) const;
  void end_warmup();
  /// Shared overload-aware serve path for warmup and measured requests:
  /// power-loss recovery clamp, GC-pressure throttle, bounded-queue
  /// admission, then CacheManager::serve for admitted requests.
  ServeOutcome serve_request(IoRequest& req, Tenant& t);
  void serve_measured(IoRequest& req, Tenant& t);
  void on_power_loss(SimTime at);
  /// Patrol-scrub cadence (integrity subsystem): runs one pass when the
  /// served-request counter hits the plan's interval, in the idle window
  /// after the triggering request's completion.
  void maybe_patrol_scrub(SimTime now);
  void take_snapshot();

  SimOptions options_;
  std::uint64_t config_hash_ = 0;
  std::uint64_t trace_hash_ = 0;

  std::unique_ptr<Ftl> ftl_;
  std::unique_ptr<CacheManager> cache_;
  std::unique_ptr<FaultInjector> fault_;
  std::unique_ptr<Telemetry> telemetry_;
  ReqBlockPolicy* req_block_ = nullptr;  // occupancy probe target, or null

  std::vector<Tenant> tenants_;
  std::unique_ptr<Arbiter> arbiter_;
  /// Monotone arbitration clock: the latest completion frontier (or, when
  /// idle, the earliest pending arrival). Heads arrived at or before it
  /// compete for service.
  SimTime arb_now_ = 0;
  std::vector<ReadyHead> ready_;  // scratch for select_tenant()

  RunResult result_;
  std::uint64_t served_ = 0;  // warmup + measured, drives the loss schedule
  SimTime resume_at_ = 0;     // device unavailable before this time
  SimTime next_snap_ns_ = 0;
  bool warmup_done_ = false;
  bool finished_ = false;
  bool finalized_ = false;
  SimTime last_warmup_arrival_ = 0;
  SimTime warmup_end_ = 0;
  std::vector<SimTime> warmup_channel_busy_;
  std::vector<SimTime> warmup_chip_busy_;

  // REQB_LINT_ALLOW(no-wallclock): wall-clock span reported as
  // wall_seconds only; deliberately outside the serialized state.
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace reqblock
