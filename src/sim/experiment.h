// Experiment matrix runner.
//
// A paper figure is a matrix of (trace, policy, cache size, ...) runs; the
// runs are completely independent, so we farm them out across hardware
// threads. Determinism is preserved: each run owns a private device,
// cache, and trace generator seeded from its profile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace reqblock {

struct ExperimentCase {
  WorkloadProfile profile;
  SimOptions options;
  /// Free-form tag benches use to index results (e.g. "delta=5").
  std::string label;
};

/// Runs all cases, in parallel up to `max_threads` (0 = hardware
/// concurrency). Results come back in case order. A case that throws is
/// reported (with its index and label) via one aggregated
/// std::runtime_error after every other case finished — a bad case can no
/// longer std::terminate the process from inside a worker thread.
std::vector<RunResult> run_cases(const std::vector<ExperimentCase>& cases,
                                 unsigned max_threads = 0);

/// Like run_cases, but never throws on case failure: a failed case comes
/// back with RunResult::ok() == false and the message in RunResult::error.
std::vector<RunResult> run_cases_nothrow(
    const std::vector<ExperimentCase>& cases, unsigned max_threads = 0);

/// Filesystem telemetry artifacts of one run. Empty strings mark files
/// that were skipped because the run carried no matching data.
struct RunArtifacts {
  std::string chrome_trace;   // <stem>.trace.json (chrome://tracing)
  std::string events_jsonl;   // <stem>.events.jsonl
  std::string snapshots_csv;  // <stem>.snapshots.csv
};

/// Writes the run's telemetry under `out_dir` (created if missing):
/// Chrome trace + JSONL when the run collected events, snapshot CSV when
/// it collected snapshots. `stem` defaults to "<trace>_<policy>" with
/// path-hostile characters replaced.
RunArtifacts export_run_artifacts(const RunResult& result,
                                  const std::string& out_dir,
                                  std::string stem = "");

/// Environment-tunable request cap for benches: REQBLOCK_BENCH_REQUESTS
/// (default `fallback`, 0 = full traces).
std::uint64_t bench_request_cap(std::uint64_t fallback);

/// Environment-tunable thread cap for benches: REQBLOCK_BENCH_THREADS.
unsigned bench_thread_cap();

}  // namespace reqblock
