#include "sim/simulator.h"

#include "sim/session.h"
#include "trace/synthetic.h"
#include "util/check.h"

namespace reqblock {

Simulator::Simulator(SimOptions options) : options_(std::move(options)) {
  options_.ssd.validate();
  REQB_CHECK_MSG(options_.cache.capacity_pages == 0 ||
                     options_.cache.capacity_pages ==
                         options_.policy.capacity_pages,
                 "cache and policy capacity must agree");
  if (options_.telemetry_env_override) options_.telemetry.apply_env();
  options_.fault.validate();
  options_.tenants.validate();
}

RunResult Simulator::run(TraceSource& trace) {
  // The stepped session is the single definition of the replay loop;
  // running it to completion in one go reproduces the historical
  // Simulator::run semantics exactly (see sim/session.h).
  if (options_.tenants.enabled()) {
    // Multi-tenant runs derive one stream per tenant from the base
    // synthetic profile (file traces carry no generator to re-seed).
    auto* synthetic = dynamic_cast<SyntheticTraceSource*>(&trace);
    REQB_CHECK_MSG(synthetic != nullptr,
                   "multi-tenant runs need a synthetic profile to derive "
                   "per-tenant streams from");
    const TenantStreams streams =
        make_tenant_streams(synthetic->profile(), options_.tenants);
    SimulationSession session(options_, streams.sources);
    while (session.step()) {
    }
    return session.finish();
  }
  SimulationSession session(options_, trace);
  while (session.step()) {
  }
  return session.finish();
}

std::uint64_t cache_pages_for_mb(std::uint64_t mb) {
  return mb * (1024 * 1024) / 4096;
}

SimOptions make_sim_options(const std::string& policy_name,
                            std::uint64_t cache_mb, std::uint32_t delta) {
  SimOptions opts;
  opts.policy.name = policy_name;
  opts.policy.capacity_pages = cache_pages_for_mb(cache_mb);
  opts.policy.pages_per_block = opts.ssd.pages_per_block;
  opts.policy.reqblock.delta = delta;
  opts.cache.capacity_pages = opts.policy.capacity_pages;
  return opts;
}

}  // namespace reqblock
