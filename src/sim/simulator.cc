#include "sim/simulator.h"

#include <chrono>
#include <memory>

#include "core/req_block_policy.h"
#include "util/audit.h"
#include "util/check.h"

namespace reqblock {

Simulator::Simulator(SimOptions options) : options_(std::move(options)) {
  options_.ssd.validate();
  REQB_CHECK_MSG(options_.cache.capacity_pages == 0 ||
                     options_.cache.capacity_pages ==
                         options_.policy.capacity_pages,
                 "cache and policy capacity must agree");
  if (options_.telemetry_env_override) options_.telemetry.apply_env();
  options_.fault.validate();
}

RunResult Simulator::run(TraceSource& trace) {
  const auto wall_start = std::chrono::steady_clock::now();

  Ftl ftl(options_.ssd);
  for (const auto& [begin, end] : trace.preexisting_ranges()) {
    ftl.add_preexisting_range(begin, end);
  }
  CacheOptions cache_opts = options_.cache;
  cache_opts.capacity_pages = options_.policy.capacity_pages;
  CacheManager cache(cache_opts, make_policy(options_.policy), ftl);

  // The occupancy probe only applies to Req-block.
  auto* req_block =
      dynamic_cast<ReqBlockPolicy*>(&cache.policy());

  // Faults: one injector per run, so experiment-level parallelism never
  // perturbs the per-run RNG stream. Disabled plans are not wired at all.
  std::unique_ptr<FaultInjector> fault;
  if (options_.fault.enabled()) {
    fault = std::make_unique<FaultInjector>(options_.fault);
    ftl.set_fault_injector(fault.get());
  }
  std::uint64_t served = 0;  // warmup + measured, drives the loss schedule
  SimTime resume_at = 0;     // device unavailable before this time

  // Per-run telemetry: one bundle per run, wired before the first request
  // so warmup traffic is visible too (the buffer is cleared after warmup,
  // like every other metric).
  Telemetry telemetry(options_.telemetry);
  cache.set_telemetry(&telemetry.trace(), &telemetry.profiler());
  ftl.set_telemetry(&telemetry.trace(), &telemetry.profiler());
  const std::uint64_t snap_requests =
      options_.telemetry.snapshot_every_requests;
  const SimTime snap_ns = options_.telemetry.snapshot_every_ns;
  const bool snapshots_on = options_.telemetry.snapshots_enabled();

  RunResult result;
  result.trace_name = trace.name();
  result.policy_name = cache.policy().name();
  result.cache_capacity_pages = cache_opts.capacity_pages;
  if (snapshots_on) {
    cache.register_metrics(telemetry.registry());
    ftl.register_metrics(telemetry.registry());
    result.telemetry.snapshots.columns = telemetry.registry().names();
  }
  SimTime next_snap_ns = snap_ns;
  const auto take_snapshot = [&] {
    const ScopedTimer timer(&telemetry.profiler(),
                            Profiler::Section::kSnapshot);
    result.telemetry.snapshots.rows.push_back(
        {result.requests, result.sim_end, telemetry.registry().sample()});
  };

  trace.reset();
  IoRequest req;
  // Warmup: populate the cache/device without counting anything.
  while (result.warmup_requests < options_.warmup_requests &&
         trace.next(req)) {
    if (req.arrival < resume_at) req.arrival = resume_at;
    const SimTime done = cache.serve(req);
    ++result.warmup_requests;
    ++served;
    if (fault != nullptr && fault->power_loss_due(served)) {
      resume_at = cache.power_loss(done, *fault);
    }
  }
  std::vector<SimTime> warmup_channel_busy(options_.ssd.channels, 0);
  std::vector<SimTime> warmup_chip_busy(options_.ssd.total_chips(), 0);
  SimTime warmup_end = 0;
  if (result.warmup_requests > 0) {
    cache.reset_metrics();
    ftl.reset_metrics();
    if (fault != nullptr) fault->reset_metrics();
    telemetry.trace().clear();
    telemetry.profiler().clear();
    for (std::uint32_t c = 0; c < options_.ssd.channels; ++c) {
      warmup_channel_busy[c] = ftl.channel_busy(c);
    }
    for (std::uint32_t c = 0; c < options_.ssd.total_chips(); ++c) {
      warmup_chip_busy[c] = ftl.chip_busy(c);
    }
    warmup_end = req.arrival;
  }

  while (trace.next(req)) {
    if (options_.max_requests != 0 &&
        result.requests >= options_.max_requests) {
      break;
    }
    // A request arriving while the device recovers from a power loss
    // waits; its latency still counts from the original arrival, so the
    // downtime shows up in the response distribution.
    const SimTime host_arrival = req.arrival;
    if (req.arrival < resume_at) req.arrival = resume_at;
    const SimTime done = cache.serve(req);
    const SimTime latency = done - host_arrival;
    result.response.record(latency);
    if (req.is_write()) {
      ++result.write_requests;
      result.write_response.record(latency);
    } else {
      ++result.read_requests;
      result.read_response.record(latency);
    }
    ++result.requests;
    result.sim_end = std::max(result.sim_end, done);
    ++served;
    if (fault != nullptr && fault->power_loss_due(served)) {
      resume_at = cache.power_loss(done, *fault);
      result.sim_end = std::max(result.sim_end, resume_at);
    }

    if (req_block != nullptr && options_.occupancy_log_interval != 0 &&
        result.requests % options_.occupancy_log_interval == 0) {
      result.occupancy_series.push_back(req_block->occupancy());
    }
    if (snapshots_on) {
      bool due = snap_requests != 0 &&
                 result.requests % snap_requests == 0;
      if (snap_ns != 0 && result.sim_end >= next_snap_ns) {
        due = true;
        while (next_snap_ns <= result.sim_end) next_snap_ns += snap_ns;
      }
      if (due) take_snapshot();
    }
  }
  cache.finalize();
  // Per-request cache audits run inside CacheManager::serve; the deep
  // device audit is O(mapped pages), so it runs once per replay here.
  run_audit("Ftl (end of run)", AuditLevel::kFull,
            [&](AuditReport& r) { ftl.audit(r); });

  result.cache = cache.metrics();
  result.flash = ftl.metrics();
  if (fault != nullptr) result.fault = fault->metrics();
  if (telemetry.trace().any_enabled()) {
    result.telemetry.events = telemetry.trace().drain();
    result.telemetry.events_emitted = telemetry.trace().emitted();
    result.telemetry.events_dropped = telemetry.trace().dropped();
    result.telemetry.events_sampled_out = telemetry.trace().sampled_out();
  }
  result.telemetry.profile = profile_report(telemetry.profiler());
  if (result.sim_end > warmup_end) {
    double ch_busy = 0.0, chip_busy = 0.0;
    for (std::uint32_t c = 0; c < options_.ssd.channels; ++c) {
      ch_busy += static_cast<double>(ftl.channel_busy(c) -
                                     warmup_channel_busy[c]);
    }
    for (std::uint32_t c = 0; c < options_.ssd.total_chips(); ++c) {
      chip_busy +=
          static_cast<double>(ftl.chip_busy(c) - warmup_chip_busy[c]);
    }
    const double span = static_cast<double>(result.sim_end - warmup_end);
    result.channel_utilization = ch_busy / (span * options_.ssd.channels);
    result.chip_utilization =
        chip_busy / (span * options_.ssd.total_chips());
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

std::uint64_t cache_pages_for_mb(std::uint64_t mb) {
  return mb * (1024 * 1024) / 4096;
}

SimOptions make_sim_options(const std::string& policy_name,
                            std::uint64_t cache_mb, std::uint32_t delta) {
  SimOptions opts;
  opts.policy.name = policy_name;
  opts.policy.capacity_pages = cache_pages_for_mb(cache_mb);
  opts.policy.pages_per_block = opts.ssd.pages_per_block;
  opts.policy.reqblock.delta = delta;
  opts.cache.capacity_pages = opts.policy.capacity_pages;
  return opts;
}

}  // namespace reqblock
