// SSD device configuration (the paper's Table 1).
#pragma once

#include <cstdint>

#include "util/types.h"

namespace reqblock {

struct SsdConfig {
  // --- Geometry -------------------------------------------------------
  std::uint32_t channels = 8;           // Table 1: "Channel Size"
  std::uint32_t chips_per_channel = 2;  // Table 1: "Chip Size"
  std::uint32_t planes_per_chip = 1;
  std::uint32_t pages_per_block = 64;   // Table 1
  std::uint32_t page_size = 4096;       // Table 1, bytes
  /// Raw physical capacity. Table 1 uses 128 GB; experiment configs may use
  /// a smaller device with identical geometry ratios to bound host memory.
  std::uint64_t capacity_bytes = 128ULL << 30;

  // --- NAND timing (Table 1) ------------------------------------------
  SimTime read_latency = 75 * kMicrosecond;     // 0.075 ms
  SimTime program_latency = 2 * kMillisecond;   // 2 ms
  SimTime erase_latency = 15 * kMillisecond;    // 15 ms
  SimTime transfer_per_byte = 10;               // 10 ns / byte on the bus
  /// Fixed command/addressing overhead charged on the channel per op.
  SimTime command_overhead = 200;

  // --- Controller/cache timing ----------------------------------------
  /// DRAM cache access cost per page (hit service / insert bookkeeping).
  SimTime cache_access_latency = 1 * kMicrosecond;

  // --- Garbage collection ----------------------------------------------
  /// GC triggers when a plane's free-block fraction drops below this.
  double gc_free_threshold = 0.10;  // Table 1: "GC Threshold 10%"

  /// Victim selection. kGreedy (the paper/SSDsim default) takes the block
  /// with the most invalid pages; kWearAware breaks near-ties (within
  /// `gc_wear_tie_margin` invalid pages of the best) toward the block
  /// with the fewest erases — a simple wear-leveling extension.
  enum class GcVictimPolicy { kGreedy, kWearAware };
  GcVictimPolicy gc_victim_policy = GcVictimPolicy::kGreedy;
  std::uint32_t gc_wear_tie_margin = 2;

  // --- Derived ---------------------------------------------------------
  std::uint32_t total_chips() const { return channels * chips_per_channel; }
  std::uint32_t total_planes() const {
    return total_chips() * planes_per_chip;
  }
  std::uint64_t total_pages() const { return capacity_bytes / page_size; }
  std::uint64_t total_blocks() const {
    return total_pages() / pages_per_block;
  }
  std::uint64_t blocks_per_plane() const {
    return total_blocks() / total_planes();
  }
  std::uint64_t pages_per_plane() const {
    return blocks_per_plane() * pages_per_block;
  }
  /// Channel time to move one page across the bus.
  SimTime page_transfer_time() const {
    return static_cast<SimTime>(page_size) * transfer_per_byte +
           command_overhead;
  }
  /// Free blocks per plane at/below which GC runs.
  std::uint64_t gc_threshold_blocks() const;

  /// Throws std::invalid_argument when geometry/timing are inconsistent.
  void validate() const;

  /// Exact Table 1 configuration (128 GB).
  static SsdConfig paper_default();

  /// Same geometry and timing, 32 GB device — the default for experiment
  /// runs so that the full flash state fits comfortably in host memory.
  static SsdConfig experiment_default();
};

}  // namespace reqblock
