// Page-level Flash Translation Layer.
//
// The FTL is the cache layer's view of the flash array: it maps logical
// pages to physical pages, allocates dynamically round-robin across
// channels (striped) or into a single derived plane (colocated — used by
// BPLRU-style whole-block flushes), runs greedy garbage collection, and
// charges all operation timing on per-channel / per-chip FCFS timelines.
//
// A per-LPN 64-bit version travels with every programmed page; it is the
// end-to-end consistency oracle the test suite checks read-your-writes
// against (no payload bytes are simulated).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "fault/fault.h"
#include "ssd/address.h"
#include "ssd/config.h"
#include "ssd/flash_array.h"
#include "ssd/timeline.h"
#include "telemetry/attribution.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/profiler.h"
#include "telemetry/trace_buffer.h"
#include "util/audit.h"
#include "util/types.h"

namespace reqblock {

/// One page of a flush batch.
struct FlushPage {
  Lpn lpn = 0;
  std::uint64_t version = 0;
};

/// Device-internal operation counters.
struct FlashMetrics {
  std::uint64_t host_page_reads = 0;   // flash reads serving host misses
  std::uint64_t host_page_writes = 0;  // flash programs from cache flushes
  std::uint64_t unmapped_reads = 0;    // reads of never-written pages
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_page_moves = 0;
  std::uint64_t erases = 0;

  /// Write amplification factor (programs incl. GC moves / host programs).
  double waf() const {
    return host_page_writes == 0
               ? 0.0
               : static_cast<double>(host_page_writes + gc_page_moves) /
                     static_cast<double>(host_page_writes);
  }

  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);
};

class Ftl {
 public:
  explicit Ftl(const SsdConfig& cfg);

  struct ReadResult {
    SimTime complete = 0;
    std::uint64_t version = 0;
    bool mapped = false;
    /// The recovery hierarchy was exhausted on this read: the page's data
    /// is gone (mapping dropped, physical page invalidated) and the host
    /// must be told. `complete` still carries the full recovery cost.
    bool lost = false;
  };

  /// Reads one logical page. Issue times must be non-decreasing across
  /// calls (the simulator processes requests in arrival order). When
  /// `attr` is non-null it receives the GC/fault share of the service
  /// interval (latency attribution); timing is identical either way.
  ReadResult read_page(Lpn lpn, SimTime issue, OpAttribution* attr = nullptr);

  /// Declares [begin, end) as holding data written before the simulated
  /// trace started (device pre-conditioning). Reads of such pages are
  /// served from flash with full timing and version 0, without the memory
  /// cost of materializing mappings; the first in-trace write takes over
  /// normally. GC never needs to move pre-existing data (it has no
  /// physical page), which slightly understates GC load — see DESIGN.md.
  void add_preexisting_range(Lpn begin, Lpn end);

  /// Programs a batch of pages.
  ///  * striped (colocate = false): pages round-robin across channels, so
  ///    a batch of N <= channels pages completes in ~1 program time;
  ///  * colocated (colocate = true): every page goes to the *channel*
  ///    derived from the first page's logical block (striped over that
  ///    channel's chips/planes) — BPLRU whole-block flush semantics; the
  ///    paper §4.2.2: "flushing a block data onto a specific SSD channel
  ///    only delays I/O processing at the same channel".
  /// Returns the completion time of the last page. When `attr` is
  /// non-null it receives the GC/fault share of the batch's critical-path
  /// page (the one whose program completed last; ties keep the first).
  SimTime program_batch(std::span<const FlushPage> pages, SimTime issue,
                        bool colocate = false, OpAttribution* attr = nullptr);

  SimTime program_page(Lpn lpn, std::uint64_t version, SimTime issue,
                       OpAttribution* attr = nullptr);

  bool is_mapped(Lpn lpn) const { return l2p_.contains(lpn); }
  std::uint64_t version_of(Lpn lpn) const;
  std::uint64_t mapped_pages() const { return l2p_.size(); }

  const FlashMetrics& metrics() const { return metrics_; }
  /// Clears the operation counters (device state stays). For warmup.
  void reset_metrics() { metrics_ = FlashMetrics{}; }
  const SsdConfig& config() const { return cfg_; }
  const FlashArray& array() const { return array_; }

  /// End-of-life read-mostly mode (aging subsystem). Entered when any
  /// plane's reclaimable capacity falls below the plan's floor or the
  /// device-wide spare pool drops below its floor; exits (with
  /// hysteresis) once every plane regains floor + margin. The session
  /// sheds host writes through the admission machinery while this is
  /// set, instead of driving the allocator into an assert.
  bool degraded_mode() const { return degraded_mode_; }

  /// Re-evaluates the end-of-life floors at time `now`, emitting
  /// kDegradedModeEnter/Exit and counting transitions. Call before
  /// admitting a host write (aging-enabled runs only). Returns the mode
  /// after the update.
  bool update_degraded_mode(SimTime now);

  /// One patrol-scrub pass (integrity subsystem): walks blocks from the
  /// persistent cursor, charging read time per examined valid page on the
  /// block's chip timeline until the plan's time budget is spent, and
  /// refreshes blocks whose predicted raw-bit-error probability or
  /// corrected-error count crossed the plan's thresholds. Prediction-only:
  /// never draws from the RNG and never touches the wear counters, so the
  /// recovery-tier conservation identities stay exact. The session calls
  /// this during idle windows on the plan's request cadence; a no-op
  /// unless an integrity model with scrub triggers is wired.
  void patrol_scrub(SimTime now);

  /// True when `plane` can afford to retire one block right now: a spare
  /// can backfill it, or the plane has both the occupancy slack to lose
  /// capacity permanently and enough free-list headroom to finish the
  /// current GC burst (retirement, unlike erase, returns no free block).
  /// The single gate for every retirement path — grown-bad GC victims,
  /// injected erase faults, aging refreshes, parity-rebuild reclaims, and
  /// patrol scrubs all funnel through maybe_retire, which consults this.
  bool can_retire_block(std::uint32_t plane) const;

  /// How close the fullest plane is to garbage collection, as an integer
  /// level in [0, headroom]: 0 while every plane keeps at least `headroom`
  /// free blocks above the GC threshold, `headroom` once any plane is at
  /// (or below) the threshold itself. The overload layer maps this level
  /// to a deterministic host-write stretch (OverloadOptions::throttle_delay).
  std::uint64_t gc_pressure_level(std::uint32_t headroom) const;

  SimTime channel_busy(std::uint32_t ch) const {
    return channels_[ch].busy_time();
  }
  SimTime chip_busy(std::uint32_t chip) const {
    return chips_[chip].busy_time();
  }

  /// Deep invariant audit: L2P↔P2L roundtrip for every mapping, total
  /// valid-page sums against the mapping table, version coverage, resource
  /// timeline monotonicity, and the flash array's own audit. O(mapped
  /// pages + physical pages).
  void audit(AuditReport& report) const;

  /// Wires the run's telemetry. The trace pointer is only kept when flash
  /// events are enabled, so a disabled run pays one null check per
  /// would-be event. Either argument may be null.
  void set_telemetry(TraceBuffer* trace, Profiler* profiler);

  /// Wires the run's fault injector (null = fault-free operation, the
  /// default) and reserves the plan's spare-block pool. Call before any
  /// traffic; the injector must outlive this Ftl.
  void set_fault_injector(FaultInjector* injector);

  /// Registers the device gauges (flash.* — host ops, GC, WAF, free
  /// blocks, mapped pages) for periodic snapshots. The registry must not
  /// outlive this Ftl.
  void register_metrics(MetricsRegistry& registry) const;

  /// Checkpoint: mapping tables, pre-existing ranges, allocation cursor,
  /// patrol-scrub cursor, metrics, resource-timeline clocks, and the
  /// flash array. deserialize()
  /// restores into a freshly constructed Ftl of the same configuration
  /// (telemetry/fault wiring is re-established by the caller, not stored).
  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);

 private:
  /// Next plane in channel-major round-robin (consecutive pages land on
  /// consecutive channels, maximizing batch parallelism).
  std::uint32_t next_plane_rr();
  /// Round-robin plane for a host write. Under fault injection, planes
  /// that cannot accept more data (shrunk by retirement) are skipped.
  std::uint32_t pick_write_plane();
  /// Channel a logical block is pinned to for colocated flushes.
  std::uint32_t colocate_channel(Lpn lpn) const;
  SimTime program_to_plane(std::uint32_t plane, Lpn lpn,
                           std::uint64_t version, SimTime issue,
                           OpAttribution* attr = nullptr);
  /// Full flash-read timing (chip sense, optional injected re-read, the
  /// integrity recovery cascade, bus transfer) plus the kPageRead event.
  /// `block` is the physical block read (wear accounting + aging ramps);
  /// FlashArray::kNoBlock for pre-existing data, which has no physical
  /// page to age or to lose. `ppn` is the physical page (integrity
  /// bookkeeping; ignored for pre-existing data). `lost` (may be null)
  /// is set when the read ended uncorrectable.
  SimTime flash_read(std::uint32_t plane, std::uint32_t block, Ppn ppn,
                     Lpn lpn, SimTime issue, OpAttribution* attr = nullptr,
                     bool* lost = nullptr);
  /// Runs the recovery cascade for one host sense that may carry raw bit
  /// errors (integrity enabled, real block): one RNG draw resolves the
  /// tier; retry steps and parity-rebuild peer reads are charged on the
  /// chip timeline from `cell_done` on. Uncorrectable reads drop the
  /// mapping and set `*lost`. Returns when the (possibly recovered) data
  /// is ready for the bus transfer.
  SimTime integrity_recover(std::uint32_t plane, std::uint32_t block,
                            Ppn ppn, Lpn lpn,
                            const FlashArray::BlockWear& wear,
                            SimTime data_age, SimTime cell_done,
                            OpAttribution* attr, bool* lost);
  /// Charges the stripe's parity-page program and sets its presence bit
  /// when programming `fresh` just completed a parity stripe (no-op with
  /// parity off). Every program path — host, GC copyback, refresh
  /// relocation — calls this so parity coverage is a pure function of the
  /// write pointer.
  SimTime maybe_close_stripe(std::uint32_t plane, Ppn fresh, SimTime t);
  /// Relocates a block's valid pages (read-disturb refresh or retention
  /// scrub) and erases or retires it, charging copyback time on the chip
  /// timeline from `t` on. Emits `kind` with arg = pages moved. Skipped
  /// (deferred to a later read) when the plane has no free block to
  /// receive the data.
  void reclaim_block(std::uint32_t plane, std::uint32_t block, SimTime t,
                     EventKind kind);
  /// Emits kWearThreshold when `block`'s P/E count just crossed the
  /// plan's rated cycles.
  void note_erase_wear(std::uint32_t plane, std::uint32_t block, SimTime t);
  /// Runs greedy GC on the plane until it is above the free threshold.
  void maybe_collect(std::uint32_t plane, SimTime t);
  /// Retires `block` instead of erasing it when the injector demands it
  /// (grown-bad mark or injected erase fault) and capacity allows.
  /// Advances `t` by any failed-erase attempt it charged on the chip.
  bool maybe_retire(std::uint32_t plane, std::uint32_t block, SimTime& t);

  SsdConfig cfg_;
  AddressMap amap_;
  FlashArray array_;
  std::vector<ResourceTimeline> channels_;
  std::vector<ResourceTimeline> chips_;
  bool in_preexisting(Lpn lpn) const;

  std::unordered_map<Lpn, Ppn> l2p_;
  std::unordered_map<Lpn, std::uint64_t> versions_;
  std::vector<std::pair<Lpn, Lpn>> preexisting_;  // sorted, disjoint
  std::uint64_t rr_counter_ = 0;
  bool degraded_mode_ = false;  // end-of-life read-mostly mode (aging)
  // Patrol-scrub cursor (integrity): next block to examine. Serialized,
  // so a resumed run continues the walk exactly where it stopped.
  std::uint32_t scrub_plane_ = 0;
  std::uint32_t scrub_block_ = 0;
  FlashMetrics metrics_;
  TraceBuffer* trace_ = nullptr;  // non-null only when flash events are on
  Profiler* profiler_ = nullptr;
  FaultInjector* fault_ = nullptr;  // non-null only when faults are planned
};

}  // namespace reqblock
