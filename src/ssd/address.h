// Physical address arithmetic.
//
// Physical pages are numbered flat:
//   ppn = (plane_global * blocks_per_plane + block) * pages_per_block + page
// where plane_global enumerates (channel, chip, plane) row-major. All
// conversions live here so geometry math has exactly one home.
#pragma once

#include <cstdint>

#include "ssd/config.h"
#include "util/check.h"
#include "util/types.h"

namespace reqblock {

struct PhysAddr {
  std::uint32_t channel = 0;
  std::uint32_t chip = 0;    // within the channel
  std::uint32_t plane = 0;   // within the chip
  std::uint32_t block = 0;   // within the plane
  std::uint32_t page = 0;    // within the block

  bool operator==(const PhysAddr&) const = default;
};

class AddressMap {
 public:
  explicit AddressMap(const SsdConfig& cfg) : cfg_(cfg) {}

  std::uint32_t plane_global(const PhysAddr& a) const {
    return (a.channel * cfg_.chips_per_channel + a.chip) *
               cfg_.planes_per_chip +
           a.plane;
  }

  std::uint32_t chip_global(std::uint32_t plane_global_idx) const {
    return plane_global_idx / cfg_.planes_per_chip;
  }

  std::uint32_t channel_of_plane(std::uint32_t plane_global_idx) const {
    return chip_global(plane_global_idx) / cfg_.chips_per_channel;
  }

  Ppn to_ppn(const PhysAddr& a) const {
    REQB_DCHECK(a.channel < cfg_.channels);
    REQB_DCHECK(a.chip < cfg_.chips_per_channel);
    REQB_DCHECK(a.plane < cfg_.planes_per_chip);
    REQB_DCHECK(a.block < cfg_.blocks_per_plane());
    REQB_DCHECK(a.page < cfg_.pages_per_block);
    return (static_cast<Ppn>(plane_global(a)) * cfg_.blocks_per_plane() +
            a.block) *
               cfg_.pages_per_block +
           a.page;
  }

  PhysAddr to_addr(Ppn ppn) const {
    REQB_DCHECK(ppn < cfg_.total_pages());
    PhysAddr a;
    a.page = static_cast<std::uint32_t>(ppn % cfg_.pages_per_block);
    const Ppn block_flat = ppn / cfg_.pages_per_block;
    a.block =
        static_cast<std::uint32_t>(block_flat % cfg_.blocks_per_plane());
    const auto plane_flat =
        static_cast<std::uint32_t>(block_flat / cfg_.blocks_per_plane());
    a.plane = plane_flat % cfg_.planes_per_chip;
    const std::uint32_t chip_flat = plane_flat / cfg_.planes_per_chip;
    a.chip = chip_flat % cfg_.chips_per_channel;
    a.channel = chip_flat / cfg_.chips_per_channel;
    return a;
  }

  /// Plane index (global) that a ppn belongs to.
  std::uint32_t plane_of(Ppn ppn) const {
    return static_cast<std::uint32_t>(
        ppn / (cfg_.blocks_per_plane() * cfg_.pages_per_block));
  }

 private:
  const SsdConfig& cfg_;
};

}  // namespace reqblock
