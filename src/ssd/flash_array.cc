#include "ssd/flash_array.h"

#include <algorithm>

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

FlashArray::FlashArray(const SsdConfig& cfg) : cfg_(cfg), amap_(cfg_) {
  cfg_.validate();
  planes_.resize(cfg_.total_planes());
  const auto bpp = static_cast<std::uint32_t>(cfg_.blocks_per_plane());
  for (auto& plane : planes_) {
    plane.blocks.resize(bpp);
    plane.free_list.reserve(bpp);
    // LIFO: block 0 is allocated first.
    for (std::uint32_t b = bpp; b > 0; --b) plane.free_list.push_back(b - 1);
  }
}

FlashArray::Block& FlashArray::block_at(std::uint32_t plane,
                                        std::uint32_t block) {
  REQB_DCHECK(plane < planes_.size());
  REQB_DCHECK(block < planes_[plane].blocks.size());
  return planes_[plane].blocks[block];
}

const FlashArray::Block& FlashArray::block_at(std::uint32_t plane,
                                              std::uint32_t block) const {
  REQB_DCHECK(plane < planes_.size());
  REQB_DCHECK(block < planes_[plane].blocks.size());
  return planes_[plane].blocks[block];
}

void FlashArray::ensure_storage(Block& b) {
  if (b.states) return;
  b.states = std::make_unique<PageState[]>(cfg_.pages_per_block);
  b.lpns = std::make_unique<std::uint32_t[]>(cfg_.pages_per_block);
  std::fill_n(b.states.get(), cfg_.pages_per_block, PageState::kFree);
}

void FlashArray::ensure_error_storage(Block& b) {
  if (b.page_errors) return;
  b.page_errors = std::make_unique<std::uint8_t[]>(cfg_.pages_per_block);
  std::fill_n(b.page_errors.get(), cfg_.pages_per_block,
              static_cast<std::uint8_t>(0));
}

void FlashArray::ensure_parity_storage(Block& b) {
  if (b.stripe_parity) return;
  const std::uint32_t stripes = stripes_per_block();
  REQB_DCHECK(stripes > 0);
  b.stripe_parity = std::make_unique<std::uint8_t[]>(stripes);
  std::fill_n(b.stripe_parity.get(), stripes, static_cast<std::uint8_t>(0));
}

void FlashArray::clear_integrity_state(Block& b) {
  if (b.page_errors) {
    std::fill_n(b.page_errors.get(), cfg_.pages_per_block,
                static_cast<std::uint8_t>(0));
  }
  if (b.stripe_parity) {
    std::fill_n(b.stripe_parity.get(), stripes_per_block(),
                static_cast<std::uint8_t>(0));
  }
}

Ppn FlashArray::make_ppn(std::uint32_t plane, std::uint32_t block,
                         std::uint32_t page) const {
  return (static_cast<Ppn>(plane) * cfg_.blocks_per_plane() + block) *
             cfg_.pages_per_block +
         page;
}

Ppn FlashArray::program(std::uint32_t plane, Lpn lpn) {
  REQB_CHECK_MSG(lpn <= 0xffffffffULL,
                 "flash array stores LPNs as 32-bit; footprint too large");
  Plane& pl = planes_[plane];
  if (pl.active == kNoBlock ||
      block_at(plane, pl.active).write_ptr >= cfg_.pages_per_block) {
    REQB_CHECK_MSG(!pl.free_list.empty(),
                   "plane out of free blocks — GC must run before program");
    pl.active = pl.free_list.back();
    pl.free_list.pop_back();
  }
  Block& b = block_at(plane, pl.active);
  ensure_storage(b);
  const std::uint32_t page = b.write_ptr++;
  REQB_DCHECK(b.states[page] == PageState::kFree);
  b.states[page] = PageState::kValid;
  b.lpns[page] = static_cast<std::uint32_t>(lpn);
  ++b.valid_count;
  ++pl.valid_pages;
  return make_ppn(plane, pl.active, page);
}

void FlashArray::invalidate(Ppn ppn) {
  const std::uint32_t plane = amap_.plane_of(ppn);
  const PhysAddr a = amap_.to_addr(ppn);
  const std::uint32_t block =
      a.block;  // to_addr gives block within plane already
  Block& b = block_at(plane, block);
  REQB_CHECK_MSG(b.states && b.states[a.page] == PageState::kValid,
                 "invalidate of a non-valid page");
  b.states[a.page] = PageState::kInvalid;
  REQB_DCHECK(b.valid_count > 0);
  --b.valid_count;
  ++b.invalid_count;
  REQB_DCHECK(planes_[plane].valid_pages > 0);
  --planes_[plane].valid_pages;
  planes_[plane].gc_heap.emplace(b.invalid_count, block);
}

PageState FlashArray::state(Ppn ppn) const {
  const PhysAddr a = amap_.to_addr(ppn);
  const Block& b = block_at(amap_.plane_of(ppn), a.block);
  return b.states ? b.states[a.page] : PageState::kFree;
}

Lpn FlashArray::lpn_at(Ppn ppn) const {
  const PhysAddr a = amap_.to_addr(ppn);
  const Block& b = block_at(amap_.plane_of(ppn), a.block);
  REQB_CHECK_MSG(b.states && b.states[a.page] == PageState::kValid,
                 "lpn_at on a non-valid page");
  return b.lpns[a.page];
}

std::uint64_t FlashArray::free_blocks(std::uint32_t plane) const {
  REQB_DCHECK(plane < planes_.size());
  return planes_[plane].free_list.size();
}

bool FlashArray::gc_needed(std::uint32_t plane) const {
  return free_blocks(plane) <= cfg_.gc_threshold_blocks();
}

std::uint32_t FlashArray::pick_gc_victim(std::uint32_t plane) {
  Plane& pl = planes_[plane];
  auto next_live_top = [&]() -> std::uint32_t {
    while (!pl.gc_heap.empty()) {
      const auto [cnt, block] = pl.gc_heap.top();
      const Block& b = block_at(plane, block);
      if (block == pl.active || b.invalid_count != cnt ||
          b.invalid_count == 0) {
        // Stale entry (count changed / block erased) or the active block;
        // a live entry with the current count exists elsewhere in the heap.
        pl.gc_heap.pop();
        continue;
      }
      return block;
    }
    return kNoBlock;
  };

  const std::uint32_t best = next_live_top();
  if (best == kNoBlock ||
      cfg_.gc_victim_policy == SsdConfig::GcVictimPolicy::kGreedy) {
    return best;
  }

  // Wear-aware: inspect every live candidate whose invalid count is within
  // the tie margin of the best and pick the least-erased. Entries are
  // popped while scanning and pushed back afterwards.
  const std::uint32_t best_cnt = block_at(plane, best).invalid_count;
  const std::uint32_t floor_cnt =
      best_cnt > cfg_.gc_wear_tie_margin ? best_cnt - cfg_.gc_wear_tie_margin
                                         : 1;
  std::uint32_t victim = best;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> scanned;
  while (true) {
    const std::uint32_t cand = next_live_top();
    if (cand == kNoBlock) break;
    const Block& b = block_at(plane, cand);
    if (b.invalid_count < floor_cnt) break;
    scanned.emplace_back(b.invalid_count, cand);
    pl.gc_heap.pop();
    if (b.erase_count < block_at(plane, victim).erase_count) victim = cand;
  }
  for (const auto& entry : scanned) pl.gc_heap.push(entry);
  return victim;
}

std::vector<Ppn> FlashArray::valid_pages(std::uint32_t plane,
                                         std::uint32_t block) const {
  const Block& b = block_at(plane, block);
  std::vector<Ppn> out;
  if (!b.states) return out;
  out.reserve(b.valid_count);
  for (std::uint32_t p = 0; p < b.write_ptr; ++p) {
    if (b.states[p] == PageState::kValid) {
      out.push_back(make_ppn(plane, block, p));
    }
  }
  return out;
}

void FlashArray::erase_block(std::uint32_t plane, std::uint32_t block) {
  Plane& pl = planes_[plane];
  Block& b = block_at(plane, block);
  REQB_CHECK_MSG(b.valid_count == 0,
                 "erase of a block that still holds valid pages");
  REQB_CHECK_MSG(block != pl.active, "erase of the active block");
  REQB_CHECK_MSG(!b.retired, "erase of a retired block");
  if (b.states) {
    std::fill_n(b.states.get(), cfg_.pages_per_block, PageState::kFree);
  }
  b.write_ptr = 0;
  b.invalid_count = 0;
  b.read_count = 0;
  b.data_origin = 0;
  clear_integrity_state(b);
  ++b.erase_count;
  ++total_erases_;
  pl.free_list.push_back(block);
}

FlashArray::BlockWear FlashArray::block_wear(std::uint32_t plane,
                                             std::uint32_t block) const {
  const Block& b = block_at(plane, block);
  return BlockWear{b.erase_count, b.read_count, b.data_origin};
}

void FlashArray::note_read(std::uint32_t plane, std::uint32_t block) {
  ++block_at(plane, block).read_count;
}

void FlashArray::note_program(Ppn ppn, SimTime now) {
  const PhysAddr a = amap_.to_addr(ppn);
  Block& b = block_at(amap_.plane_of(ppn), a.block);
  b.read_count = 0;
  if (a.page == 0) b.data_origin = now;
}

void FlashArray::pre_age(std::uint32_t cycles) {
  REQB_CHECK_MSG(total_erases_ == 0 && initial_pe_ == 0,
                 "pre_age must run at wiring time, before any traffic");
  if (cycles == 0) return;
  initial_pe_ = cycles;
  for (Plane& pl : planes_) {
    for (Block& b : pl.blocks) b.erase_count += cycles;
  }
}

void FlashArray::set_stripe_pages(std::uint32_t pages) {
  REQB_CHECK_MSG(total_erases_ == 0,
                 "set_stripe_pages must run at wiring time, before traffic");
  REQB_CHECK_MSG(pages == 0 || pages <= cfg_.pages_per_block,
                 "parity stripe cannot span more pages than a block holds");
  stripe_pages_ = pages;
}

std::uint32_t FlashArray::stripe_of(Ppn ppn) const {
  REQB_DCHECK(stripe_pages_ > 0);
  return amap_.to_addr(ppn).page / stripe_pages_;
}

bool FlashArray::closes_stripe(Ppn ppn) const {
  if (stripe_pages_ == 0) return false;
  const std::uint32_t page = amap_.to_addr(ppn).page;
  return (page + 1) % stripe_pages_ == 0;
}

bool FlashArray::stripe_parity_present(std::uint32_t plane,
                                       std::uint32_t block,
                                       std::uint32_t stripe) const {
  const Block& b = block_at(plane, block);
  if (!b.stripe_parity) return false;
  // Tail pages past the last full stripe (pages_per_block not a multiple
  // of stripe_pages) never close a stripe and are never protected.
  if (stripe >= stripes_per_block()) return false;
  return b.stripe_parity[stripe] != 0;
}

void FlashArray::set_stripe_parity(std::uint32_t plane, std::uint32_t block,
                                   std::uint32_t stripe) {
  Block& b = block_at(plane, block);
  ensure_parity_storage(b);
  REQB_DCHECK(stripe < stripes_per_block());
  // Parity closes exactly when the stripe's last data page programs, so
  // the whole stripe must be physically written.
  REQB_DCHECK(static_cast<std::uint32_t>(b.write_ptr) >=
              (stripe + 1) * stripe_pages_);
  b.stripe_parity[stripe] = 1;
}

std::uint8_t FlashArray::note_page_error(Ppn ppn) {
  const PhysAddr a = amap_.to_addr(ppn);
  Block& b = block_at(amap_.plane_of(ppn), a.block);
  REQB_DCHECK(a.page < b.write_ptr);
  ensure_error_storage(b);
  if (b.page_errors[a.page] < 0xff) ++b.page_errors[a.page];
  return b.page_errors[a.page];
}

std::uint8_t FlashArray::page_errors(Ppn ppn) const {
  const PhysAddr a = amap_.to_addr(ppn);
  const Block& b = block_at(amap_.plane_of(ppn), a.block);
  return b.page_errors ? b.page_errors[a.page] : 0;
}

std::uint32_t FlashArray::max_page_errors(std::uint32_t plane,
                                          std::uint32_t block) const {
  const Block& b = block_at(plane, block);
  if (!b.page_errors) return 0;
  std::uint32_t worst = 0;
  for (std::uint32_t p = 0; p < b.write_ptr; ++p) {
    worst = std::max<std::uint32_t>(worst, b.page_errors[p]);
  }
  return worst;
}

std::uint64_t FlashArray::reclaimable_blocks(std::uint32_t plane) const {
  REQB_DCHECK(plane < planes_.size());
  const Plane& pl = planes_[plane];
  const std::uint64_t usable =
      pl.blocks.size() - pl.retired_count - pl.spare_list.size();
  const std::uint64_t data_blocks =
      (pl.valid_pages + cfg_.pages_per_block - 1) / cfg_.pages_per_block;
  return usable > data_blocks ? usable - data_blocks : 0;
}

std::uint64_t FlashArray::spares_total() const {
  std::uint64_t total = 0;
  for (const Plane& pl : planes_) total += pl.spare_list.size();
  return total;
}

std::uint32_t FlashArray::erase_count(std::uint32_t plane,
                                      std::uint32_t block) const {
  return block_at(plane, block).erase_count;
}

void FlashArray::reserve_spares(std::uint32_t per_plane) {
  for (std::uint32_t p = 0; p < planes_.size(); ++p) {
    Plane& pl = planes_[p];
    REQB_CHECK_MSG(pl.spare_list.empty(), "spares already reserved");
    REQB_CHECK_MSG(pl.free_list.size() >
                       per_plane + cfg_.gc_threshold_blocks() + 1,
                   "spare pool would leave the plane unable to allocate");
    for (std::uint32_t i = 0; i < per_plane; ++i) {
      pl.spare_list.push_back(pl.free_list.back());
      pl.free_list.pop_back();
    }
    pl.spares_reserved = per_plane;
  }
}

bool FlashArray::mark_bad(std::uint32_t plane, std::uint32_t block) {
  Block& b = block_at(plane, block);
  REQB_CHECK_MSG(!b.retired, "marking a retired block bad");
  if (b.marked_bad) return false;
  b.marked_bad = true;
  return true;
}

bool FlashArray::is_marked_bad(std::uint32_t plane,
                               std::uint32_t block) const {
  return block_at(plane, block).marked_bad;
}

bool FlashArray::retire_block(std::uint32_t plane, std::uint32_t block) {
  Plane& pl = planes_[plane];
  Block& b = block_at(plane, block);
  REQB_CHECK_MSG(b.valid_count == 0,
                 "retire of a block that still holds valid pages");
  REQB_CHECK_MSG(block != pl.active, "retire of the active block");
  REQB_CHECK_MSG(!b.retired, "double retirement");
  if (b.states) {
    std::fill_n(b.states.get(), cfg_.pages_per_block, PageState::kFree);
  }
  b.write_ptr = 0;
  b.invalid_count = 0;
  b.read_count = 0;
  b.data_origin = 0;
  clear_integrity_state(b);
  b.retired = true;
  ++pl.retired_count;
  ++total_retired_;
  if (!pl.spare_list.empty()) {
    // Remap: a spare takes the retired block's place in the free pool.
    pl.free_list.push_back(pl.spare_list.back());
    pl.spare_list.pop_back();
    return false;
  }
  if (pl.degraded) return false;
  pl.degraded = true;
  return true;
}

void FlashArray::close_active(std::uint32_t plane) {
  planes_[plane].active = kNoBlock;
}

bool FlashArray::can_lose_block(std::uint32_t plane) const {
  REQB_DCHECK(plane < planes_.size());
  const Plane& pl = planes_[plane];
  // Hard budget: capacity actually lost (retirements not absorbed by a
  // spare remap) never exceeds one GC-threshold's worth of blocks. The
  // plane's current occupancy is a poor predictor of its future share —
  // data written while the plane was near-empty redistributes later — so
  // the bound must not depend on it.
  const std::uint64_t spares_used = pl.spares_reserved - pl.spare_list.size();
  const std::uint64_t capacity_lost = pl.retired_count - spares_used;
  if (capacity_lost >= cfg_.gc_threshold_blocks()) return false;
  const std::uint64_t usable =
      pl.blocks.size() - pl.retired_count - pl.spare_list.size();
  const std::uint64_t data_blocks =
      (pl.valid_pages + cfg_.pages_per_block - 1) / cfg_.pages_per_block;
  return usable > data_blocks + cfg_.gc_threshold_blocks() + 2;
}

bool FlashArray::can_accept_page(std::uint32_t plane) const {
  REQB_DCHECK(plane < planes_.size());
  const Plane& pl = planes_[plane];
  const std::uint64_t usable =
      pl.blocks.size() - pl.retired_count - pl.spare_list.size();
  const std::uint64_t reserve = cfg_.gc_threshold_blocks() + 2;
  if (usable <= reserve) return false;
  return pl.valid_pages + 1 <= (usable - reserve) * cfg_.pages_per_block;
}

std::uint64_t FlashArray::spares_remaining(std::uint32_t plane) const {
  REQB_DCHECK(plane < planes_.size());
  return planes_[plane].spare_list.size();
}

bool FlashArray::plane_degraded(std::uint32_t plane) const {
  REQB_DCHECK(plane < planes_.size());
  return planes_[plane].degraded;
}

FlashArray::WearStats FlashArray::wear_stats() const {
  WearStats stats;
  stats.min_erases = ~0u;
  double sum = 0.0;
  std::uint64_t blocks = 0;
  for (const auto& plane : planes_) {
    for (const auto& block : plane.blocks) {
      stats.min_erases = std::min(stats.min_erases, block.erase_count);
      stats.max_erases = std::max(stats.max_erases, block.erase_count);
      sum += block.erase_count;
      ++blocks;
      if (block.erase_count > 0) ++stats.blocks_touched;
    }
  }
  if (blocks == 0) {
    stats.min_erases = 0;
  } else {
    stats.mean_erases = sum / static_cast<double>(blocks);
  }
  return stats;
}

std::uint64_t FlashArray::valid_page_count(std::uint32_t plane) const {
  REQB_DCHECK(plane < planes_.size());
  return planes_[plane].valid_pages;
}

void FlashArray::audit(AuditReport& report) const {
  for (std::uint32_t p = 0; p < planes_.size(); ++p) {
    const Plane& pl = planes_[p];
    const std::string plane_tag = "plane " + std::to_string(p);
    REQB_AUDIT_MSG(report,
                   pl.active == kNoBlock || pl.active < pl.blocks.size(),
                   plane_tag + " active block index out of range");

    std::vector<bool> on_free_list(pl.blocks.size(), false);
    for (const std::uint32_t b : pl.free_list) {
      if (!REQB_AUDIT_MSG(report, b < pl.blocks.size(),
                          plane_tag + " free list holds invalid block " +
                              std::to_string(b))) {
        continue;
      }
      REQB_AUDIT_MSG(report, !on_free_list[b],
                     plane_tag + " free list holds block " +
                         std::to_string(b) + " twice");
      on_free_list[b] = true;
      REQB_AUDIT_MSG(report, b != pl.active,
                     plane_tag + " active block " + std::to_string(b) +
                         " is on the free list");
      const Block& blk = pl.blocks[b];
      REQB_AUDIT_MSG(report,
                     blk.write_ptr == 0 && blk.valid_count == 0 &&
                         blk.invalid_count == 0,
                     plane_tag + " free block " + std::to_string(b) +
                         " is not empty");
      REQB_AUDIT_MSG(report, blk.read_count == 0 && blk.data_origin == 0,
                     plane_tag + " free block " + std::to_string(b) +
                         " carries stale wear state");
      REQB_AUDIT_MSG(report, !blk.retired,
                     plane_tag + " retired block " + std::to_string(b) +
                         " is on the free list");
    }

    for (const std::uint32_t b : pl.spare_list) {
      if (!REQB_AUDIT_MSG(report, b < pl.blocks.size(),
                          plane_tag + " spare list holds invalid block " +
                              std::to_string(b))) {
        continue;
      }
      REQB_AUDIT_MSG(report, !on_free_list[b],
                     plane_tag + " block " + std::to_string(b) +
                         " is on both the free and spare lists");
      REQB_AUDIT_MSG(report, b != pl.active,
                     plane_tag + " active block " + std::to_string(b) +
                         " is on the spare list");
      const Block& blk = pl.blocks[b];
      REQB_AUDIT_MSG(report,
                     blk.write_ptr == 0 && blk.valid_count == 0 &&
                         !blk.retired,
                     plane_tag + " spare block " + std::to_string(b) +
                         " is not an empty in-service block");
    }
    REQB_AUDIT_MSG(report, !pl.degraded || pl.spare_list.empty(),
                   plane_tag + " degraded while spares remain");

    std::uint64_t plane_retired = 0;
    std::uint64_t plane_valid = 0;
    for (std::uint32_t b = 0; b < pl.blocks.size(); ++b) {
      const Block& blk = pl.blocks[b];
      const std::string tag =
          plane_tag + " block " + std::to_string(b);
      REQB_AUDIT_MSG(report, blk.write_ptr <= cfg_.pages_per_block,
                     tag + " write pointer past the block end");
      if (blk.retired) {
        ++plane_retired;
        REQB_AUDIT_MSG(report, blk.write_ptr == 0 && blk.valid_count == 0 &&
                           blk.invalid_count == 0,
                       tag + " retired but not empty");
        REQB_AUDIT_MSG(report, b != pl.active, tag + " retired yet active");
        REQB_AUDIT_MSG(report,
                       blk.read_count == 0 && blk.data_origin == 0,
                       tag + " retired but carries wear state");
      }
      REQB_AUDIT_MSG(report, blk.erase_count >= initial_pe_,
                     tag + " P/E count " + std::to_string(blk.erase_count) +
                         " fell below the pre-age floor " +
                         std::to_string(initial_pe_));
      REQB_AUDIT_MSG(report, blk.write_ptr > 0 || blk.read_count == 0,
                     tag + " counts reads but holds no programmed pages");
      REQB_AUDIT_MSG(report,
                     blk.valid_count + blk.invalid_count == blk.write_ptr,
                     tag + " counters " + std::to_string(blk.valid_count) +
                         "+" + std::to_string(blk.invalid_count) +
                         " disagree with write pointer " +
                         std::to_string(blk.write_ptr));
      plane_valid += blk.valid_count;
      // Integrity state tracks programmed pages only: free and retired
      // blocks (write_ptr 0) must carry no error counts or parity bits.
      if (blk.page_errors) {
        for (std::uint32_t page = 0; page < cfg_.pages_per_block; ++page) {
          REQB_AUDIT_MSG(report,
                         blk.page_errors[page] == 0 || page < blk.write_ptr,
                         tag + " page " + std::to_string(page) +
                             " counts errors but was never programmed");
        }
      }
      if (blk.stripe_parity) {
        for (std::uint32_t s = 0; s < stripes_per_block(); ++s) {
          REQB_AUDIT_MSG(report,
                         blk.stripe_parity[s] == 0 ||
                             static_cast<std::uint32_t>(blk.write_ptr) >=
                                 (s + 1) * stripe_pages_,
                         tag + " stripe " + std::to_string(s) +
                             " has parity but incomplete data pages");
        }
      }
      if (!blk.states) {
        REQB_AUDIT_MSG(report, blk.write_ptr == 0 && blk.valid_count == 0,
                       tag + " has pages but no materialized storage");
        continue;
      }
      std::uint32_t valid = 0, invalid = 0;
      for (std::uint32_t page = 0; page < cfg_.pages_per_block; ++page) {
        const PageState s = blk.states[page];
        if (s == PageState::kValid) ++valid;
        if (s == PageState::kInvalid) ++invalid;
        REQB_AUDIT_MSG(report,
                       page < blk.write_ptr ? s != PageState::kFree
                                            : s == PageState::kFree,
                       tag + " page " + std::to_string(page) +
                           " state contradicts the write pointer");
      }
      REQB_AUDIT_MSG(report,
                     valid == blk.valid_count && invalid == blk.invalid_count,
                     tag + " states count " + std::to_string(valid) + "v/" +
                         std::to_string(invalid) + "i, counters say " +
                         std::to_string(blk.valid_count) + "v/" +
                         std::to_string(blk.invalid_count) + "i");
    }
    REQB_AUDIT_MSG(report, plane_valid == pl.valid_pages,
                   plane_tag + " blocks hold " + std::to_string(plane_valid) +
                       " valid pages, counter says " +
                       std::to_string(pl.valid_pages));
    REQB_AUDIT_MSG(report, plane_retired == pl.retired_count,
                   plane_tag + " holds " + std::to_string(plane_retired) +
                       " retired blocks, counter says " +
                       std::to_string(pl.retired_count));

    // Retired blocks must be invisible to GC victim selection: any heap
    // entry whose invalid count still matches the live block (the only
    // entries pick_gc_victim will act on) must point at an in-service
    // block.
    auto heap = pl.gc_heap;
    while (!heap.empty()) {
      const auto [cnt, b] = heap.top();
      heap.pop();
      if (b >= pl.blocks.size()) continue;  // stale beyond range
      const Block& blk = pl.blocks[b];
      if (blk.invalid_count != cnt || cnt == 0) continue;  // stale entry
      REQB_AUDIT_MSG(report, !blk.retired,
                     plane_tag + " GC heap holds live entry for retired "
                                 "block " + std::to_string(b));
    }
  }

  // P/E accounting closes: every erase either rode total_erases_ or was
  // part of the uniform pre-age.
  std::uint64_t erase_sum = 0;
  std::uint64_t block_count = 0;
  for (const auto& plane : planes_) {
    for (const auto& block : plane.blocks) {
      erase_sum += block.erase_count;
      ++block_count;
    }
  }
  REQB_AUDIT_MSG(
      report,
      erase_sum == total_erases_ +
                       static_cast<std::uint64_t>(initial_pe_) * block_count,
      "per-block P/E counts sum to " + std::to_string(erase_sum) +
          ", expected total_erases " + std::to_string(total_erases_) +
          " + pre-age " + std::to_string(initial_pe_) + " x " +
          std::to_string(block_count) + " blocks");
}

void FlashArray::serialize(SnapshotWriter& w) const {
  w.tag("flash_array");
  w.u64(total_erases_);
  w.u64(total_retired_);
  w.u64(planes_.size());
  for (const Plane& pl : planes_) {
    w.vec_u32(pl.free_list);
    w.vec_u32(pl.spare_list);
    w.u64(pl.spares_reserved);
    w.u64(pl.retired_count);
    w.b(pl.degraded);
    w.u32(pl.active);
    w.u64(pl.valid_pages);
    // The GC heap's pop order depends only on the element multiset (pairs
    // are totally ordered; equal duplicates pop consecutively), so
    // draining a copy captures behavior exactly and gives stable bytes.
    auto heap = pl.gc_heap;
    w.u64(heap.size());
    while (!heap.empty()) {
      w.u32(heap.top().first);
      w.u32(heap.top().second);
      heap.pop();
    }
    w.u64(pl.blocks.size());
    for (const Block& b : pl.blocks) {
      w.u16(b.write_ptr);
      w.u16(b.valid_count);
      w.u16(b.invalid_count);
      w.u32(b.erase_count);
      w.u32(b.read_count);
      w.i64(b.data_origin);
      w.b(b.marked_bad);
      w.b(b.retired);
      // Page storage is lazily allocated; only written pages carry state.
      for (std::uint32_t p = 0; p < b.write_ptr; ++p) {
        w.u8(static_cast<std::uint8_t>(b.states[p]));
        w.u32(b.lpns[p]);
      }
      // v6: sparse per-page error counters (ascending page order) and
      // stripe-parity presence (ascending stripe order). Error-free,
      // parity-free blocks cost two zero counts.
      std::uint16_t error_entries = 0;
      if (b.page_errors) {
        for (std::uint32_t p = 0; p < b.write_ptr; ++p) {
          error_entries += b.page_errors[p] > 0 ? 1 : 0;
        }
      }
      w.u16(error_entries);
      if (b.page_errors) {
        for (std::uint32_t p = 0; p < b.write_ptr; ++p) {
          if (b.page_errors[p] == 0) continue;
          w.u16(static_cast<std::uint16_t>(p));
          w.u8(b.page_errors[p]);
        }
      }
      std::uint16_t parity_entries = 0;
      if (b.stripe_parity) {
        for (std::uint32_t s = 0; s < stripes_per_block(); ++s) {
          parity_entries += b.stripe_parity[s] != 0 ? 1 : 0;
        }
      }
      w.u16(parity_entries);
      if (b.stripe_parity) {
        for (std::uint32_t s = 0; s < stripes_per_block(); ++s) {
          if (b.stripe_parity[s] != 0) w.u16(static_cast<std::uint16_t>(s));
        }
      }
    }
  }
}

void FlashArray::deserialize(SnapshotReader& r) {
  r.tag("flash_array");
  total_erases_ = r.u64();
  total_retired_ = r.u64();
  const std::uint64_t plane_count = r.u64();
  if (plane_count != planes_.size()) {
    throw SnapshotError("flash snapshot has a different plane count");
  }
  for (Plane& pl : planes_) {
    pl.free_list = r.vec_u32();
    pl.spare_list = r.vec_u32();
    pl.spares_reserved = r.u64();
    pl.retired_count = r.u64();
    pl.degraded = r.b();
    pl.active = r.u32();
    pl.valid_pages = r.u64();
    const std::uint64_t heap_size = r.u64();
    for (std::uint64_t i = 0; i < heap_size; ++i) {
      const std::uint32_t invalid = r.u32();
      const std::uint32_t block = r.u32();
      pl.gc_heap.emplace(invalid, block);
    }
    const std::uint64_t block_count = r.u64();
    if (block_count != pl.blocks.size()) {
      throw SnapshotError("flash snapshot has a different block count");
    }
    for (Block& b : pl.blocks) {
      b.write_ptr = r.u16();
      b.valid_count = r.u16();
      b.invalid_count = r.u16();
      b.erase_count = r.u32();
      b.read_count = r.u32();
      b.data_origin = r.i64();
      b.marked_bad = r.b();
      b.retired = r.b();
      if (b.write_ptr > cfg_.pages_per_block) {
        throw SnapshotError("flash snapshot write pointer out of range");
      }
      if (b.write_ptr > 0) {
        ensure_storage(b);
        for (std::uint32_t p = 0; p < b.write_ptr; ++p) {
          const auto s = r.u8();
          if (s > static_cast<std::uint8_t>(PageState::kInvalid)) {
            throw SnapshotError("flash snapshot has an invalid page state");
          }
          b.states[p] = static_cast<PageState>(s);
          b.lpns[p] = r.u32();
        }
      }
      // v6: sparse error counters and stripe-parity bits, each refused
      // unless strictly ascending, in range, and consistent with the
      // write pointer / stripe wiring.
      const std::uint16_t error_entries = r.u16();
      std::uint32_t last_page = 0;
      for (std::uint16_t i = 0; i < error_entries; ++i) {
        const std::uint16_t page = r.u16();
        if (page >= b.write_ptr) {
          throw SnapshotError(
              "flash snapshot counts errors on an unprogrammed page");
        }
        if (i > 0 && page <= last_page) {
          throw SnapshotError(
              "flash snapshot error entries are not strictly ascending");
        }
        last_page = page;
        const std::uint8_t errors = r.u8();
        if (errors == 0) {
          throw SnapshotError("flash snapshot has a zero error entry");
        }
        ensure_error_storage(b);
        b.page_errors[page] = errors;
      }
      const std::uint16_t parity_entries = r.u16();
      std::uint32_t last_stripe = 0;
      for (std::uint16_t i = 0; i < parity_entries; ++i) {
        const std::uint16_t stripe = r.u16();
        if (stripe_pages_ == 0) {
          throw SnapshotError(
              "flash snapshot carries stripe parity but the run has no "
              "parity stripes wired");
        }
        if (stripe >= stripes_per_block() ||
            static_cast<std::uint32_t>(b.write_ptr) <
                (static_cast<std::uint32_t>(stripe) + 1) * stripe_pages_) {
          throw SnapshotError(
              "flash snapshot parity entry contradicts the write pointer");
        }
        if (i > 0 && stripe <= last_stripe) {
          throw SnapshotError(
              "flash snapshot parity entries are not strictly ascending");
        }
        last_stripe = stripe;
        ensure_parity_storage(b);
        b.stripe_parity[stripe] = 1;
      }
    }
  }
}

}  // namespace reqblock
