// NAND flash array state: planes, blocks, pages.
//
// Tracks page states (free/valid/invalid), per-plane free-block lists and
// active (currently appended) blocks, erase counts, and supplies greedy GC
// victim selection via a lazily-updated max-heap over invalid counts.
// Purely functional state — all *timing* lives in the FTL's resource
// timelines.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "ssd/address.h"
#include "ssd/config.h"
#include "util/audit.h"
#include "util/types.h"

namespace reqblock {

class SnapshotReader;
class SnapshotWriter;

enum class PageState : std::uint8_t { kFree = 0, kValid = 1, kInvalid = 2 };

class FlashArray {
 public:
  static constexpr std::uint32_t kNoBlock = ~0u;

  explicit FlashArray(const SsdConfig& cfg);

  /// Programs `lpn` into the plane's active block (allocating a fresh block
  /// from the free list when needed) and returns the physical page written.
  /// Requires at least one allocatable page (callers run GC first).
  Ppn program(std::uint32_t plane, Lpn lpn);

  /// Marks a previously valid page invalid (its data was superseded).
  void invalidate(Ppn ppn);

  PageState state(Ppn ppn) const;
  Lpn lpn_at(Ppn ppn) const;

  std::uint64_t free_blocks(std::uint32_t plane) const;
  /// True when the plane is at/below the configured GC threshold.
  bool gc_needed(std::uint32_t plane) const;

  /// GC victim per the configured policy. kGreedy: the block with the most
  /// invalid pages (and at least one). kWearAware: among blocks within
  /// gc_wear_tie_margin invalid pages of the best, the least-erased one.
  /// Returns kNoBlock when no block qualifies.
  std::uint32_t pick_gc_victim(std::uint32_t plane);

  /// Physical pages still valid inside a block (the pages GC must move).
  std::vector<Ppn> valid_pages(std::uint32_t plane, std::uint32_t block) const;

  /// Erases a block; it must hold no valid pages.
  void erase_block(std::uint32_t plane, std::uint32_t block);

  // --- Bad-block management (fault subsystem) -------------------------

  /// Moves `per_plane` blocks from every plane's free list into its spare
  /// pool. Call once, at wiring time, before traffic; spares only return
  /// to service through retire_block remapping.
  void reserve_spares(std::uint32_t per_plane);

  /// Flags a block as grown-bad (program retries exhausted on it). The
  /// block stays in service until GC empties it; the FTL then retires it
  /// instead of erasing. Returns false when it was already marked.
  bool mark_bad(std::uint32_t plane, std::uint32_t block);
  bool is_marked_bad(std::uint32_t plane, std::uint32_t block) const;

  /// Takes an empty, inactive block permanently out of service. Remaps a
  /// spare into the free list when one is left; otherwise the plane loses
  /// a block of capacity and enters degraded mode. Returns true when this
  /// call transitioned the plane into degraded mode.
  bool retire_block(std::uint32_t plane, std::uint32_t block);

  /// Closes the plane's active block (next program allocates a fresh
  /// one). Used after the active block is declared bad mid-write.
  void close_active(std::uint32_t plane);
  bool is_active(std::uint32_t plane, std::uint32_t block) const {
    return planes_[plane].active == block;
  }

  /// True when the plane can afford to permanently lose one more block:
  /// after the retirement it could still hold its current valid data plus
  /// the GC operating reserve. Measures usable capacity (total minus
  /// retired minus unreclaimed spares), not the transient free count —
  /// retirement happens during GC, when free blocks are at the threshold
  /// by construction.
  bool can_lose_block(std::uint32_t plane) const;

  /// True when the plane can take one more host page and still keep GC
  /// operational: valid data stays below usable capacity minus the GC
  /// reserve. Planes shrunk by retirement shed host-write load through
  /// this check (GC copyback never grows a plane's valid count, so
  /// gating host programs bounds occupancy).
  bool can_accept_page(std::uint32_t plane) const;

  std::uint64_t spares_remaining(std::uint32_t plane) const;
  bool spare_available(std::uint32_t plane) const {
    return spares_remaining(plane) > 0;
  }
  bool plane_degraded(std::uint32_t plane) const;
  std::uint64_t retired_blocks() const { return total_retired_; }

  std::uint64_t total_erases() const { return total_erases_; }
  std::uint32_t erase_count(std::uint32_t plane, std::uint32_t block) const;
  std::uint64_t valid_page_count(std::uint32_t plane) const;

  // --- Per-block wear state (aging subsystem) -------------------------

  /// Wear view of one block, the inputs to the AgingModel ramps.
  struct BlockWear {
    std::uint32_t pe_cycles = 0;    // erase count (pre-age included)
    std::uint32_t read_count = 0;   // reads since the last program
    SimTime data_origin = 0;        // when the block's data epoch began
  };
  BlockWear block_wear(std::uint32_t plane, std::uint32_t block) const;

  /// Counts one read against the block (read-disturb accounting).
  void note_read(std::uint32_t plane, std::uint32_t block);

  /// Wear bookkeeping for a page just programmed: the block's read count
  /// resets (programming refreshes the cell charge the disturb model
  /// tracks) and the first page after an erase stamps the data epoch.
  void note_program(Ppn ppn, SimTime now);

  /// Pre-ages every block by `cycles` P/E cycles, so a run opens mid-life
  /// or near end-of-life. Wiring-time only, before any traffic; uniform,
  /// so relative wear ordering (and wear-aware GC) is unchanged.
  void pre_age(std::uint32_t cycles);
  std::uint32_t initial_pe_cycles() const { return initial_pe_; }

  // --- Data-integrity state (integrity subsystem) ----------------------

  /// Arms plane-stripe parity: every `pages` consecutive physical pages
  /// of a block form one stripe whose parity page (modeled spare area)
  /// is programmed when the stripe's last data page programs. Wiring
  /// time only, before any traffic; 0 leaves parity off.
  void set_stripe_pages(std::uint32_t pages);
  std::uint32_t stripe_pages() const { return stripe_pages_; }

  /// Stripe index of a physical page (requires stripe_pages() > 0).
  std::uint32_t stripe_of(Ppn ppn) const;
  /// True when programming `ppn` completed its stripe's data pages (the
  /// FTL then charges the parity program and sets the presence bit).
  bool closes_stripe(Ppn ppn) const;

  /// Parity presence per (block, stripe). Set only for stripes whose
  /// data pages are all programmed; cleared by erase/retire.
  bool stripe_parity_present(std::uint32_t plane, std::uint32_t block,
                             std::uint32_t stripe) const;
  void set_stripe_parity(std::uint32_t plane, std::uint32_t block,
                         std::uint32_t stripe);

  /// Counts one corrected-error episode against the page (saturates at
  /// 255); feeds the patrol scrubber's refresh decision. Returns the
  /// new count.
  std::uint8_t note_page_error(Ppn ppn);
  std::uint8_t page_errors(Ppn ppn) const;
  /// Largest per-page corrected-error count in the block (0 when the
  /// block never saw an error).
  std::uint32_t max_page_errors(std::uint32_t plane,
                                std::uint32_t block) const;

  /// Blocks the plane could free by moving every valid page elsewhere:
  /// usable capacity minus the blocks its current data needs. The
  /// end-of-life floor watches this — unlike the transient free count it
  /// does not dip during normal GC, and unlike total valid pages it
  /// recovers when overwrites invalidate a stuck plane's data.
  std::uint64_t reclaimable_blocks(std::uint32_t plane) const;

  /// Spare blocks left across all planes (end-of-life spare floor).
  std::uint64_t spares_total() const;

  /// Wear distribution across all blocks (endurance view; the paper's
  /// Table 1 device context — QLC-era parts tolerate ~500 P/E cycles).
  struct WearStats {
    std::uint32_t min_erases = 0;
    std::uint32_t max_erases = 0;
    double mean_erases = 0.0;
    /// Blocks that were erased at least once.
    std::uint64_t blocks_touched = 0;
  };
  WearStats wear_stats() const;

  const SsdConfig& config() const { return cfg_; }
  const AddressMap& address_map() const { return amap_; }

  /// Deep invariant audit: per-block page-state counts vs the valid /
  /// invalid counters, per-plane valid-page sums, free-list uniqueness and
  /// emptiness of free blocks, and active-block bookkeeping. O(physical
  /// pages with storage materialized).
  void audit(AuditReport& report) const;

  /// Checkpoint: page states, free/spare lists, retirement flags, GC heap
  /// contents, wear counters, and (format v6) per-page error counters
  /// plus stripe-parity presence. deserialize() restores into a freshly
  /// constructed array of the same geometry and stripe wiring.
  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);

 private:
  struct Block {
    std::unique_ptr<PageState[]> states;   // lazily allocated
    std::unique_ptr<std::uint32_t[]> lpns; // lazily allocated
    /// Corrected-error count per page (integrity); lazily allocated on
    /// the first error, cleared by erase/retire.
    std::unique_ptr<std::uint8_t[]> page_errors;
    /// Parity presence per stripe (integrity); lazily allocated when the
    /// first stripe closes, cleared by erase/retire.
    std::unique_ptr<std::uint8_t[]> stripe_parity;
    std::uint16_t write_ptr = 0;
    std::uint16_t valid_count = 0;
    std::uint16_t invalid_count = 0;
    std::uint32_t erase_count = 0;
    std::uint32_t read_count = 0;  // reads since last program (disturb)
    SimTime data_origin = 0;       // epoch stamp of the current data
    bool marked_bad = false;  // retries exhausted; retire at next erase
    bool retired = false;     // permanently out of service
  };

  struct Plane {
    std::vector<Block> blocks;
    std::vector<std::uint32_t> free_list;  // LIFO of erased block indices
    std::vector<std::uint32_t> spare_list;  // bad-block replacement pool
    std::uint64_t spares_reserved = 0;      // pool size at reservation time
    std::uint64_t retired_count = 0;
    bool degraded = false;  // retirement outran the spare pool
    std::uint32_t active = kNoBlock;
    // Lazy max-heap of (invalid_count, block). Stale entries are skipped
    // on pop by re-checking the live count.
    std::priority_queue<std::pair<std::uint32_t, std::uint32_t>> gc_heap;
    std::uint64_t valid_pages = 0;
  };

  Block& block_at(std::uint32_t plane, std::uint32_t block);
  const Block& block_at(std::uint32_t plane, std::uint32_t block) const;
  void ensure_storage(Block& b);
  void ensure_error_storage(Block& b);
  void ensure_parity_storage(Block& b);
  void clear_integrity_state(Block& b);
  std::uint32_t stripes_per_block() const {
    return stripe_pages_ == 0 ? 0 : cfg_.pages_per_block / stripe_pages_;
  }
  Ppn make_ppn(std::uint32_t plane, std::uint32_t block,
               std::uint32_t page) const;

  SsdConfig cfg_;
  AddressMap amap_;
  std::vector<Plane> planes_;
  std::uint64_t total_erases_ = 0;
  std::uint64_t total_retired_ = 0;
  std::uint32_t initial_pe_ = 0;  // uniform pre-age applied at wiring
  std::uint32_t stripe_pages_ = 0;  // data pages per parity stripe (0=off)
};

}  // namespace reqblock
