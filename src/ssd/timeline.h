// FCFS resource timelines.
//
// The simulator schedules flash operations by reserving time slots on the
// resources they occupy (a channel bus, a chip). Requests are processed in
// arrival order, so a simple "next free instant" per resource implements
// exact FCFS queueing without a global event calendar.
#pragma once

#include <algorithm>

#include "util/check.h"
#include "util/types.h"

namespace reqblock {

class ResourceTimeline {
 public:
  /// Reserves `duration` starting no earlier than `earliest`; returns the
  /// *completion* time. Also accumulates busy time for utilization stats.
  SimTime acquire(SimTime earliest, SimTime duration) {
    REQB_DCHECK(duration >= 0);
    const SimTime start = std::max(earliest, next_free_);
    next_free_ = start + duration;
    busy_time_ += duration;
    return next_free_;
  }

  /// The instant the resource becomes idle.
  SimTime next_free() const { return next_free_; }

  /// Total busy time reserved so far.
  SimTime busy_time() const { return busy_time_; }

  void reset() {
    next_free_ = 0;
    busy_time_ = 0;
  }

  /// Restores a checkpointed clock; the pair must satisfy consistent().
  void restore(SimTime next_free, SimTime busy) {
    next_free_ = next_free;
    busy_time_ = busy;
    REQB_CHECK(consistent());
  }

  /// Monotonicity invariant, checked by the FTL audit: reservations only
  /// push next_free_ forward, and every acquire grows it by at least the
  /// reserved duration, so the accumulated busy time can never exceed the
  /// last completion instant.
  bool consistent() const {
    return next_free_ >= 0 && busy_time_ >= 0 && busy_time_ <= next_free_;
  }

 private:
  SimTime next_free_ = 0;
  SimTime busy_time_ = 0;
};

}  // namespace reqblock
