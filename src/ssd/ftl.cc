#include "ssd/ftl.h"

#include <algorithm>
#include <string>

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

Ftl::Ftl(const SsdConfig& cfg)
    : cfg_(cfg), amap_(cfg_), array_(cfg_) {
  channels_.resize(cfg_.channels);
  chips_.resize(cfg_.total_chips());
}

std::uint64_t Ftl::version_of(Lpn lpn) const {
  const auto it = versions_.find(lpn);
  return it == versions_.end() ? 0 : it->second;
}

void Ftl::add_preexisting_range(Lpn begin, Lpn end) {
  REQB_CHECK_MSG(begin < end, "empty pre-existing range");
  preexisting_.emplace_back(begin, end);
  std::sort(preexisting_.begin(), preexisting_.end());
}

bool Ftl::in_preexisting(Lpn lpn) const {
  auto it = std::upper_bound(
      preexisting_.begin(), preexisting_.end(), lpn,
      [](Lpn v, const std::pair<Lpn, Lpn>& r) { return v < r.first; });
  if (it == preexisting_.begin()) return false;
  --it;
  return lpn >= it->first && lpn < it->second;
}

Ftl::ReadResult Ftl::read_page(Lpn lpn, SimTime issue, OpAttribution* attr) {
  const ScopedTimer timer(profiler_, Profiler::Section::kFtlRead);
  if (attr != nullptr) *attr = OpAttribution{};  // unmapped path returns early
  const auto it = l2p_.find(lpn);
  if (it == l2p_.end()) {
    if (in_preexisting(lpn)) {
      // Pre-conditioned data: full flash-read timing from the plane the
      // page would statically live on, version 0. No physical block
      // exists, so the aging ramps see none of these reads.
      const auto plane = static_cast<std::uint32_t>(lpn % cfg_.total_planes());
      const SimTime done =
          flash_read(plane, FlashArray::kNoBlock, 0, lpn, issue, attr);
      return {done, 0, true, false};
    }
    // Reading a never-written page: served by the controller (zero-fill),
    // no flash access.
    ++metrics_.unmapped_reads;
    return {issue + cfg_.cache_access_latency, 0, false, false};
  }
  const Ppn ppn = it->second;
  // `it` may be erased by an uncorrectable read below; take the version
  // before the call so the result reports what the host *asked for*.
  const std::uint64_t version = version_of(lpn);
  bool lost = false;
  const SimTime done = flash_read(amap_.plane_of(ppn),
                                  amap_.to_addr(ppn).block, ppn, lpn, issue,
                                  attr, &lost);
  if (lost) {
    // read_page is the only host-read entry point and the only path that
    // can go uncorrectable, so this stays exactly equal to the
    // uncorrectable counter — the reconciliation tests check it.
    ++fault_->metrics().integrity.host_reads_lost;
  }
  return {done, version, true, lost};
}

SimTime Ftl::flash_read(std::uint32_t plane, std::uint32_t block, Ppn ppn,
                        Lpn lpn, SimTime issue, OpAttribution* attr,
                        bool* lost) {
  if (attr != nullptr) *attr = OpAttribution{};
  const std::uint32_t chip = amap_.chip_global(plane);
  const std::uint32_t ch = amap_.channel_of_plane(plane);
  // Wear accounting happens before the fault draws so the disturb ramp
  // and the bit-error model see this read; the ramps are pure functions
  // of the counters, so the RNG draws below stay the only source of
  // randomness (one for the injected-fault classes, one for the
  // integrity cascade, each skipped entirely when its subsystem is off).
  double aging_extra = 0.0;
  bool disturb_due = false;
  bool scrub_due = false;
  FlashArray::BlockWear wear;
  SimTime data_age = 0;
  if (block != FlashArray::kNoBlock) {
    array_.note_read(plane, block);
    if (fault_ != nullptr &&
        (fault_->aging().enabled() || fault_->integrity().enabled())) {
      wear = array_.block_wear(plane, block);
      data_age = wear.data_origin > 0 && issue > wear.data_origin
                     ? issue - wear.data_origin
                     : 0;
    }
    if (fault_ != nullptr && fault_->aging().enabled()) {
      aging_extra =
          fault_->aging().read_fail_extra(wear.read_count, data_age);
      disturb_due = fault_->aging().read_disturb_migration_due(wear.read_count);
      scrub_due = !disturb_due && fault_->aging().retention_scrub_due(data_age);
    }
  }
  SimTime cell_done = chips_[chip].acquire(issue, cfg_.read_latency);
  if (fault_ != nullptr && fault_->inject_read_fault(aging_extra)) {
    // Injected read failure (uncorrectable on the first sense): one
    // chip-level re-read before the data crosses the bus.
    const SimTime begin = cell_done;
    cell_done = chips_[chip].acquire(cell_done, cfg_.read_latency);
    if (attr != nullptr) attr->fault = cell_done - begin;
    if (trace_ != nullptr) {
      trace_->emit({begin, cell_done - begin, lpn, 0, EventKind::kReadRetry,
                    static_cast<std::uint16_t>(chip),
                    static_cast<std::uint16_t>(ch)});
    }
  }
  if (block != FlashArray::kNoBlock && fault_ != nullptr &&
      fault_->integrity().enabled()) {
    cell_done = integrity_recover(plane, block, ppn, lpn, wear, data_age,
                                  cell_done, attr, lost);
  }
  const SimTime done =
      channels_[ch].acquire(cell_done, cfg_.page_transfer_time());
  ++metrics_.host_page_reads;
  if (trace_ != nullptr) {
    trace_->emit({issue, done - issue, lpn, 0, EventKind::kPageRead,
                  static_cast<std::uint16_t>(chip),
                  static_cast<std::uint16_t>(ch)});
  }
  if (disturb_due || scrub_due) {
    // Background refresh: the relocation rides the chip timeline after
    // the host read's data is already on the bus, so it delays future
    // operations, not this request.
    reclaim_block(plane, block, done,
                  disturb_due ? EventKind::kReadDisturbMigrate
                              : EventKind::kRetentionScrub);
  }
  return done;
}

SimTime Ftl::integrity_recover(std::uint32_t plane, std::uint32_t block,
                               Ppn ppn, Lpn lpn,
                               const FlashArray::BlockWear& wear,
                               SimTime data_age, SimTime cell_done,
                               OpAttribution* attr, bool* lost) {
  const IntegrityModel::Outcome out =
      fault_->integrity_read_outcome(wear.pe_cycles, wear.read_count,
                                     data_age);
  if (out.tier == IntegrityModel::Tier::kClean) return cell_done;
  const std::uint32_t chip = amap_.chip_global(plane);
  const std::uint16_t chip16 = static_cast<std::uint16_t>(chip);
  const std::uint16_t ch16 =
      static_cast<std::uint16_t>(amap_.channel_of_plane(plane));
  IntegrityMetrics& m = fault_->metrics().integrity;
  if (out.tier == IntegrityModel::Tier::kEccCorrected) {
    // Tier 1: the fast engine rides the sense — no extra chip time.
    const std::uint8_t errs = array_.note_page_error(ppn);
    if (trace_ != nullptr) {
      trace_->emit({cell_done, 0, lpn, errs, EventKind::kEccCorrect, chip16,
                    ch16});
    }
    return cell_done;
  }
  // Tier 2: escalating re-senses. kRetryCorrected performed out.retry_steps
  // attempts with the last one succeeding; kParity burned the full budget.
  const SimTime recover_begin = cell_done;
  for (std::uint32_t step = 1; step <= out.retry_steps; ++step) {
    const SimTime begin = cell_done;
    cell_done = chips_[chip].acquire(
        cell_done, fault_->integrity().retry_step_cost(step));
    if (trace_ != nullptr) {
      trace_->emit({begin, cell_done - begin, lpn, step,
                    EventKind::kReadRetryStep, chip16, ch16});
    }
  }
  if (out.tier == IntegrityModel::Tier::kParity) {
    // Tier 3: RAIN rebuild — read every peer page of the stripe
    // (stripe size - 1 = stripe_pages reads, chip-internal, no bus)
    // through the normal timeline. Only fully-programmed stripes carry
    // parity; open stripes and runs without parity wired fall through
    // to tier 4.
    const std::uint32_t stripe_pages = array_.stripe_pages();
    bool rebuilt = false;
    if (stripe_pages > 0 &&
        array_.stripe_parity_present(plane, block, array_.stripe_of(ppn))) {
      const SimTime begin = cell_done;
      cell_done = chips_[chip].acquire(
          cell_done, static_cast<SimTime>(stripe_pages) * cfg_.read_latency);
      ++m.parity_rebuilds;
      m.parity_peer_reads += stripe_pages;
      array_.note_page_error(ppn);
      if (trace_ != nullptr) {
        trace_->emit({begin, cell_done - begin, lpn, stripe_pages,
                      EventKind::kParityRebuild, chip16, ch16});
      }
      rebuilt = true;
    }
    if (!rebuilt) {
      // Tier 4: the data is gone. Drop the mapping so the device stops
      // serving stale bytes; the host sees the loss via ReadResult.
      ++m.uncorrectable;
      const std::uint8_t errs = array_.page_errors(ppn);
      array_.invalidate(ppn);
      l2p_.erase(lpn);
      versions_.erase(lpn);
      if (lost != nullptr) *lost = true;
      if (trace_ != nullptr) {
        trace_->emit({cell_done, 0, lpn, errs, EventKind::kUncorrectable,
                      chip16, ch16});
      }
    }
  } else {
    array_.note_page_error(ppn);
  }
  const SimTime recovery = cell_done - recover_begin;
  if (attr != nullptr) attr->fault += recovery;
  m.recovery_time_total += recovery;
  return cell_done;
}

std::uint32_t Ftl::next_plane_rr() {
  const std::uint64_t idx = rr_counter_++;
  const std::uint32_t ch = static_cast<std::uint32_t>(idx % cfg_.channels);
  const std::uint32_t chip = static_cast<std::uint32_t>(
      (idx / cfg_.channels) % cfg_.chips_per_channel);
  const std::uint32_t plane = static_cast<std::uint32_t>(
      (idx / (static_cast<std::uint64_t>(cfg_.channels) *
              cfg_.chips_per_channel)) %
      cfg_.planes_per_chip);
  return (ch * cfg_.chips_per_channel + chip) * cfg_.planes_per_chip + plane;
}

std::uint32_t Ftl::pick_write_plane() {
  std::uint32_t plane = next_plane_rr();
  if (fault_ == nullptr) return plane;
  // Under fault injection planes can shrink (retirement past the spare
  // pool). A plane that cannot take more data without starving its GC
  // sheds host writes onto the next candidates; if every plane is
  // saturated the device is genuinely full and the last candidate's
  // allocation check reports it.
  for (std::uint32_t i = 1; i < cfg_.total_planes(); ++i) {
    if (array_.can_accept_page(plane)) return plane;
    plane = next_plane_rr();
  }
  return plane;
}

std::uint32_t Ftl::colocate_channel(Lpn lpn) const {
  const Lpn logical_block = lpn / cfg_.pages_per_block;
  return static_cast<std::uint32_t>(logical_block % cfg_.channels);
}

SimTime Ftl::maybe_close_stripe(std::uint32_t plane, Ppn fresh, SimTime t) {
  if (!array_.closes_stripe(fresh)) return t;
  // One real parity-page program on the chip timeline. The parity page
  // lives in the modeled spare area, so no Ppn is allocated; presence is
  // a pure function of the write pointer (failed program attempts advance
  // it too — parity is XOR over *physical* pages, garbage included).
  const std::uint32_t chip = amap_.chip_global(plane);
  t = chips_[chip].acquire(t, cfg_.program_latency);
  array_.set_stripe_parity(plane, amap_.to_addr(fresh).block,
                           array_.stripe_of(fresh));
  return t;
}

void Ftl::maybe_collect(std::uint32_t plane, SimTime t) {
  if (!array_.gc_needed(plane)) return;
  const ScopedTimer timer(profiler_, Profiler::Section::kGc);
  const std::uint32_t chip = amap_.chip_global(plane);
  const std::uint16_t chip16 = static_cast<std::uint16_t>(chip);
  const std::uint16_t ch16 =
      static_cast<std::uint16_t>(amap_.channel_of_plane(plane));
  const SimTime gc_begin = t;
  std::uint64_t moves = 0;
  if (trace_ != nullptr) {
    trace_->emit({gc_begin, 0, 0, plane, EventKind::kGcStart, chip16, ch16});
  }
  while (array_.gc_needed(plane)) {
    const std::uint32_t victim = array_.pick_gc_victim(plane);
    if (victim == FlashArray::kNoBlock) break;  // nothing reclaimable
    ++metrics_.gc_runs;
    // Move still-valid pages within the plane (copyback: chip-internal
    // read + program, no bus transfer), then erase.
    for (const Ppn old : array_.valid_pages(plane, victim)) {
      const Lpn lpn = array_.lpn_at(old);
      const Ppn fresh = array_.program(plane, lpn);
      array_.invalidate(old);
      l2p_[lpn] = fresh;
      ++metrics_.gc_page_moves;
      const SimTime begin = t;
      t = chips_[chip].acquire(t, cfg_.read_latency + cfg_.program_latency);
      array_.note_program(fresh, t);
      t = maybe_close_stripe(plane, fresh, t);
      if (trace_ != nullptr) {
        trace_->emit({begin, t - begin, lpn, victim, EventKind::kGcMove,
                      chip16, ch16});
      }
      ++moves;
    }
    if (fault_ == nullptr || !maybe_retire(plane, victim, t)) {
      array_.erase_block(plane, victim);
      ++metrics_.erases;
      const SimTime begin = t;
      t = chips_[chip].acquire(t, cfg_.erase_latency);
      note_erase_wear(plane, victim, t);
      if (trace_ != nullptr) {
        trace_->emit({begin, t - begin, 0, victim, EventKind::kBlockErase,
                      chip16, ch16});
      }
    }
  }
  if (trace_ != nullptr) {
    trace_->emit({gc_begin, t - gc_begin, 0, moves, EventKind::kGcEnd, chip16,
                  ch16});
  }
}

SimTime Ftl::program_to_plane(std::uint32_t plane, Lpn lpn,
                              std::uint64_t version, SimTime issue,
                              OpAttribution* attr) {
  const ScopedTimer timer(profiler_, Profiler::Section::kFtlProgram);
  const std::uint32_t chip = amap_.chip_global(plane);
  const std::uint32_t ch = amap_.channel_of_plane(plane);
  // GC runs entirely on the chip timeline (copyback + erase, no bus), so
  // its latency cost to *this* program is exactly how far it pushed the
  // chip's next-free point past where the bus transfer would have left
  // the program waiting anyway.
  const SimTime chip_free_before = chips_[chip].next_free();
  maybe_collect(plane, issue);
  const SimTime chip_free_after = chips_[chip].next_free();

  const SimTime bus_done =
      channels_[ch].acquire(issue, cfg_.page_transfer_time());
  SimTime t = bus_done;
  SimTime first_attempt_done = 0;
  std::uint32_t attempt = 0;
  Ppn fresh = 0;
  for (;;) {
    fresh = array_.program(plane, lpn);
    t = chips_[chip].acquire(t, cfg_.program_latency);
    t = maybe_close_stripe(plane, fresh, t);
    if (attempt == 0) first_attempt_done = t;
    // The endurance ramp reads the wear of the block this attempt landed
    // on (retries can land on a different, fresher block).
    const double wear_extra =
        fault_ != nullptr && fault_->aging().enabled()
            ? fault_->aging().program_fail_extra(
                  array_.block_wear(plane, amap_.to_addr(fresh).block)
                      .pe_cycles)
            : 0.0;
    if (fault_ == nullptr || attempt >= fault_->plan().max_program_retries ||
        !fault_->inject_program_fault(wear_extra)) {
      break;
    }
    // Injected program failure: the attempt burned a page (now garbage)
    // and the chip backs off before retrying. A block that eats the whole
    // retry budget is declared grown-bad and closed, so the final attempt
    // lands on a fresh block and is forced to succeed.
    ++attempt;
    const std::uint32_t failed_block = amap_.to_addr(fresh).block;
    array_.invalidate(fresh);
    const SimTime backoff_begin = t;
    t = chips_[chip].acquire(t, fault_->program_backoff(chip));
    if (trace_ != nullptr) {
      trace_->emit({backoff_begin, t - backoff_begin, lpn, attempt,
                    EventKind::kProgramRetry, static_cast<std::uint16_t>(chip),
                    static_cast<std::uint16_t>(ch)});
    }
    if (attempt >= fault_->plan().max_program_retries) {
      if (array_.mark_bad(plane, failed_block)) {
        ++fault_->metrics().bad_block_marks;
      }
      array_.close_active(plane);
    }
    maybe_collect(plane, t);  // retries burn pages; keep GC honest
  }
  if (fault_ != nullptr) {
    fault_->note_program_success(chip);
    if (array_.plane_degraded(plane)) {
      // Degraded planes pay a controller-side remapping penalty on every
      // program (capacity loss already slows them through extra GC).
      t = chips_[chip].acquire(t, fault_->plan().degraded_program_penalty);
    }
  }
  const SimTime done = t;
  array_.note_program(fresh, done);
  if (attr != nullptr) {
    // gc: the pre-program GC's push of the chip past the bus handoff.
    // fault: everything after the first program attempt completed —
    // backoffs, retry programs (and any GC they trigger), degraded-plane
    // penalty. Both are provably within [issue, done].
    attr->gc = std::max(chip_free_after, bus_done) -
               std::max(chip_free_before, bus_done);
    attr->fault = done - first_attempt_done;
  }

  const auto it = l2p_.find(lpn);
  if (it != l2p_.end()) {
    array_.invalidate(it->second);
    it->second = fresh;
  } else {
    l2p_.emplace(lpn, fresh);
  }
  versions_[lpn] = version;
  ++metrics_.host_page_writes;
  if (trace_ != nullptr) {
    trace_->emit({issue, done - issue, lpn, version, EventKind::kPageProgram,
                  static_cast<std::uint16_t>(chip),
                  static_cast<std::uint16_t>(ch)});
  }
  return done;
}

bool Ftl::maybe_retire(std::uint32_t plane, std::uint32_t block, SimTime& t) {
  const std::uint32_t chip = amap_.chip_global(plane);
  const std::uint16_t chip16 = static_cast<std::uint16_t>(chip);
  const std::uint16_t ch16 =
      static_cast<std::uint16_t>(amap_.channel_of_plane(plane));
  bool want_retire = array_.is_marked_bad(plane, block);
  const double wear_extra =
      fault_->aging().enabled()
          ? fault_->aging().erase_fail_extra(
                array_.block_wear(plane, block).pe_cycles)
          : 0.0;
  if (fault_->inject_erase_fault(wear_extra)) {
    // The failed erase attempt occupies the chip before the controller
    // gives up on the block.
    const SimTime begin = t;
    t = chips_[chip].acquire(t, cfg_.erase_latency);
    if (trace_ != nullptr) {
      trace_->emit({begin, t - begin, 0, block, EventKind::kEraseFault,
                    chip16, ch16});
    }
    want_retire = true;
  }
  if (!want_retire) return false;
  if (!can_retire_block(plane)) {
    // Keep the block in service (a later erase attempt succeeds) rather
    // than shrink the plane below its GC operating point.
    ++fault_->metrics().retires_refused;
    return false;
  }
  if (array_.retire_block(plane, block)) {
    ++fault_->metrics().degraded_planes;
  }
  ++fault_->metrics().blocks_retired;
  if (trace_ != nullptr) {
    trace_->emit({t, 0, 0, block, EventKind::kBlockRetire, chip16, ch16});
  }
  return true;
}

bool Ftl::can_retire_block(std::uint32_t plane) const {
  // The three retirement guards, in order:
  //   1. spare budget — a reserved spare backfills the loss for free;
  //      without one, retirement permanently shrinks the plane, so
  //   2. occupancy — the shrunk plane must still hold its current valid
  //      data plus the GC operating reserve, and
  //   3. free-list floor — retirement, unlike erase, returns no free
  //      block, while the next victim's copyback (inside a GC burst)
  //      still consumes them.
  return array_.spare_available(plane) ||
         (array_.can_lose_block(plane) && array_.free_blocks(plane) > 2);
}

void Ftl::reclaim_block(std::uint32_t plane, std::uint32_t block, SimTime t,
                        EventKind kind) {
  if (array_.free_blocks(plane) == 0) return;  // defer to a later read
  const std::uint32_t chip = amap_.chip_global(plane);
  const std::uint16_t chip16 = static_cast<std::uint16_t>(chip);
  const std::uint16_t ch16 =
      static_cast<std::uint16_t>(amap_.channel_of_plane(plane));
  // The active block can be reclaimed too (a long read-only phase never
  // closes it); the next host program simply opens a fresh one.
  if (array_.is_active(plane, block)) array_.close_active(plane);
  const SimTime begin = t;
  std::uint64_t moved = 0;
  for (const Ppn old : array_.valid_pages(plane, block)) {
    const Lpn lpn = array_.lpn_at(old);
    const Ppn fresh = array_.program(plane, lpn);
    array_.invalidate(old);
    l2p_[lpn] = fresh;
    t = chips_[chip].acquire(t, cfg_.read_latency + cfg_.program_latency);
    array_.note_program(fresh, t);
    t = maybe_close_stripe(plane, fresh, t);
    ++moved;
  }
  if (fault_ == nullptr || !maybe_retire(plane, block, t)) {
    array_.erase_block(plane, block);
    ++metrics_.erases;
    const SimTime erase_begin = t;
    t = chips_[chip].acquire(t, cfg_.erase_latency);
    note_erase_wear(plane, block, t);
    if (trace_ != nullptr) {
      trace_->emit({erase_begin, t - erase_begin, 0, block,
                    EventKind::kBlockErase, chip16, ch16});
    }
  }
  FaultMetrics& m = fault_->metrics();
  switch (kind) {
    case EventKind::kReadDisturbMigrate:
      ++m.read_disturb_migrations;
      m.read_disturb_pages_moved += moved;
      break;
    case EventKind::kPatrolScrub:
      ++m.integrity.patrol_scrubs;
      m.integrity.patrol_pages_moved += moved;
      break;
    default:
      ++m.retention_scrubs;
      m.retention_pages_moved += moved;
      break;
  }
  if (trace_ != nullptr) {
    trace_->emit({begin, t - begin, block, moved, kind, chip16, ch16});
  }
}

void Ftl::patrol_scrub(SimTime now) {
  if (fault_ == nullptr || !fault_->integrity().enabled()) return;
  const IntegrityModel& model = fault_->integrity();
  const IntegrityPlan& plan = model.plan();
  if (plan.scrub_rber_threshold <= 0.0 && plan.scrub_error_limit == 0) {
    return;
  }
  const ScopedTimer timer(profiler_, Profiler::Section::kGc);
  IntegrityMetrics& m = fault_->metrics().integrity;
  const std::uint64_t total_blocks =
      static_cast<std::uint64_t>(cfg_.total_planes()) *
      cfg_.blocks_per_plane();
  // Prediction-only walk: every examined valid page charges one read on
  // its block's chip (the scrubber really senses the data), but never
  // touches the wear counters or the RNG — a pass perturbs timing, not
  // the fault sequence. Block granularity: read count and data age are
  // per block, so one decision covers all of its pages.
  SimTime spent = 0;
  for (std::uint64_t visited = 0;
       visited < total_blocks && spent < plan.scrub_time_budget; ++visited) {
    const std::uint32_t plane = scrub_plane_;
    const std::uint32_t block = scrub_block_;
    if (++scrub_block_ >= cfg_.blocks_per_plane()) {
      scrub_block_ = 0;
      if (++scrub_plane_ >= cfg_.total_planes()) scrub_plane_ = 0;
    }
    const std::uint64_t valid = array_.valid_pages(plane, block).size();
    if (valid == 0) continue;
    const SimTime exam = static_cast<SimTime>(valid) * cfg_.read_latency;
    const std::uint32_t chip = amap_.chip_global(plane);
    const SimTime done = chips_[chip].acquire(now, exam);
    spent += exam;
    m.patrol_pages_examined += valid;
    const FlashArray::BlockWear wear = array_.block_wear(plane, block);
    const SimTime age = wear.data_origin > 0 && now > wear.data_origin
                            ? now - wear.data_origin
                            : 0;
    const double p = model.detect_prob(wear.pe_cycles, wear.read_count, age);
    if (model.scrub_refresh_due(p, array_.max_page_errors(plane, block))) {
      reclaim_block(plane, block, done, EventKind::kPatrolScrub);
    }
  }
}

void Ftl::note_erase_wear(std::uint32_t plane, std::uint32_t block,
                          SimTime t) {
  if (fault_ == nullptr) return;
  const std::uint32_t rated = fault_->plan().aging.rated_pe_cycles;
  if (rated == 0 || array_.block_wear(plane, block).pe_cycles != rated) {
    return;
  }
  ++fault_->metrics().wear_threshold_crossings;
  if (trace_ != nullptr) {
    trace_->emit({t, 0, block, 0, EventKind::kWearThreshold,
                  static_cast<std::uint16_t>(amap_.chip_global(plane)),
                  static_cast<std::uint16_t>(amap_.channel_of_plane(plane))});
  }
}

bool Ftl::update_degraded_mode(SimTime now) {
  if (fault_ == nullptr) return degraded_mode_;
  const AgingPlan& plan = fault_->plan().aging;
  const std::uint64_t floor = plan.eol_free_block_floor > 0
                                  ? plan.eol_free_block_floor
                                  : cfg_.gc_threshold_blocks() + 3;
  std::uint64_t min_reclaimable = ~0ull;
  std::uint32_t worst_plane = 0;
  for (std::uint32_t p = 0; p < cfg_.total_planes(); ++p) {
    const std::uint64_t reclaimable = array_.reclaimable_blocks(p);
    if (reclaimable < min_reclaimable) {
      min_reclaimable = reclaimable;
      worst_plane = p;
    }
  }
  const bool spares_low =
      plan.eol_spare_floor > 0 && array_.spares_total() < plan.eol_spare_floor;
  bool next = degraded_mode_;
  if (!degraded_mode_) {
    if (min_reclaimable < floor || spares_low) next = true;
  } else {
    // Hysteresis: exit needs every plane comfortably above the floor, and
    // the spare trigger is sticky (spares never regrow).
    if (min_reclaimable >= floor + plan.eol_exit_margin && !spares_low) {
      next = false;
    }
  }
  if (next == degraded_mode_) return degraded_mode_;
  degraded_mode_ = next;
  FaultMetrics& m = fault_->metrics();
  if (next) {
    ++m.degraded_mode_enters;
  } else {
    ++m.degraded_mode_exits;
  }
  if (trace_ != nullptr) {
    trace_->emit({now, 0, 0, worst_plane,
                  next ? EventKind::kDegradedModeEnter
                       : EventKind::kDegradedModeExit,
                  static_cast<std::uint16_t>(amap_.chip_global(worst_plane)),
                  static_cast<std::uint16_t>(
                      amap_.channel_of_plane(worst_plane))});
  }
  return degraded_mode_;
}

std::uint64_t Ftl::gc_pressure_level(std::uint32_t headroom) const {
  const std::uint64_t threshold = cfg_.gc_threshold_blocks();
  const std::uint64_t target = threshold + headroom;
  std::uint64_t level = 0;
  for (std::uint32_t p = 0; p < cfg_.total_planes(); ++p) {
    const std::uint64_t free = array_.free_blocks(p);
    if (free < target) level = std::max(level, target - free);
  }
  return std::min<std::uint64_t>(level, headroom);
}

void Ftl::set_fault_injector(FaultInjector* injector) {
  fault_ = injector;
  if (fault_ != nullptr && fault_->plan().spare_blocks_per_plane > 0) {
    array_.reserve_spares(fault_->plan().spare_blocks_per_plane);
  }
  if (fault_ != nullptr && fault_->plan().aging.initial_pe_cycles > 0) {
    array_.pre_age(fault_->plan().aging.initial_pe_cycles);
  }
  if (fault_ != nullptr && fault_->plan().integrity.enabled()) {
    array_.set_stripe_pages(fault_->plan().integrity.stripe_pages);
  }
}

void Ftl::set_telemetry(TraceBuffer* trace, Profiler* profiler) {
  trace_ = trace != nullptr && trace->enabled(EventCategory::kFlash)
               ? trace
               : nullptr;
  profiler_ = profiler;
}

void Ftl::register_metrics(MetricsRegistry& registry) const {
  registry.register_counter("flash.host_page_writes",
                            &metrics_.host_page_writes);
  registry.register_counter("flash.host_page_reads",
                            &metrics_.host_page_reads);
  registry.register_counter("flash.gc_runs", &metrics_.gc_runs);
  registry.register_counter("flash.gc_page_moves", &metrics_.gc_page_moves);
  registry.register_counter("flash.erases", &metrics_.erases);
  registry.register_gauge("flash.waf", [this] { return metrics_.waf(); });
  registry.register_gauge("flash.mapped_pages", [this] {
    return static_cast<double>(l2p_.size());
  });
  registry.register_gauge("flash.free_blocks", [this] {
    std::uint64_t total = 0;
    for (std::uint32_t p = 0; p < cfg_.total_planes(); ++p) {
      total += array_.free_blocks(p);
    }
    return static_cast<double>(total);
  });
}

SimTime Ftl::program_page(Lpn lpn, std::uint64_t version, SimTime issue,
                          OpAttribution* attr) {
  return program_to_plane(pick_write_plane(), lpn, version, issue, attr);
}

void Ftl::audit(AuditReport& report) const {
  // L2P ↔ P2L roundtrip: every mapping must land on a valid physical page
  // that names this very LPN, and must carry a version entry.
  for (const auto& [lpn, ppn] : l2p_) {
    const std::string tag = "lpn " + std::to_string(lpn);
    if (!REQB_AUDIT_MSG(report, array_.state(ppn) == PageState::kValid,
                        tag + " maps to ppn " + std::to_string(ppn) +
                            " which is not valid")) {
      continue;
    }
    REQB_AUDIT_MSG(report, array_.lpn_at(ppn) == lpn,
                   tag + " maps to ppn " + std::to_string(ppn) +
                       " which claims lpn " +
                       std::to_string(array_.lpn_at(ppn)));
    REQB_AUDIT_MSG(report, versions_.contains(lpn),
                   tag + " mapped without a version record");
  }

  // Valid-page accounting: the flash array must hold exactly one valid
  // physical page per mapping (GC moves swap mappings atomically between
  // host operations).
  std::uint64_t valid_total = 0;
  for (std::uint32_t p = 0; p < cfg_.total_planes(); ++p) {
    valid_total += array_.valid_page_count(p);
  }
  REQB_AUDIT_MSG(report, valid_total == l2p_.size(),
                 "flash holds " + std::to_string(valid_total) +
                     " valid pages, mapping table holds " +
                     std::to_string(l2p_.size()));

  // FCFS timelines only ever move forward.
  for (std::uint32_t c = 0; c < channels_.size(); ++c) {
    REQB_AUDIT_MSG(report, channels_[c].consistent(),
                   "channel " + std::to_string(c) +
                       " timeline not monotonic");
  }
  for (std::uint32_t c = 0; c < chips_.size(); ++c) {
    REQB_AUDIT_MSG(report, chips_[c].consistent(),
                   "chip " + std::to_string(c) + " timeline not monotonic");
  }

  array_.audit(report);
}

SimTime Ftl::program_batch(std::span<const FlushPage> pages, SimTime issue,
                           bool colocate, OpAttribution* attr) {
  REQB_CHECK_MSG(!pages.empty(), "program_batch needs at least one page");
  // Track the critical-path page: the batch's latency is its slowest
  // page's, so the batch-level GC/fault attribution is that page's.
  // Strict `>` keeps the first achiever on ties (deterministic).
  SimTime done = issue;
  OpAttribution critical;
  OpAttribution page_attr;
  if (colocate) {
    // Whole batch pinned to one channel; stripe its chips/planes so the
    // channel (not a single chip) is the congested resource.
    const std::uint32_t ch = colocate_channel(pages.front().lpn);
    const std::uint32_t planes_in_channel =
        cfg_.chips_per_channel * cfg_.planes_per_chip;
    std::uint32_t next = 0;
    for (const auto& p : pages) {
      std::uint32_t plane = ch * planes_in_channel + (next % planes_in_channel);
      if (fault_ != nullptr) {
        // Same load-shedding as pick_write_plane, restricted to the
        // pinned channel's planes.
        for (std::uint32_t i = 0; i < planes_in_channel; ++i) {
          const std::uint32_t cand =
              ch * planes_in_channel + ((next + i) % planes_in_channel);
          if (array_.can_accept_page(cand)) {
            plane = cand;
            next += i;
            break;
          }
        }
      }
      ++next;
      const SimTime d =
          program_to_plane(plane, p.lpn, p.version, issue, &page_attr);
      if (d > done) {
        done = d;
        critical = page_attr;
      }
    }
  } else {
    for (const auto& p : pages) {
      const SimTime d = program_to_plane(pick_write_plane(), p.lpn, p.version,
                                         issue, &page_attr);
      if (d > done) {
        done = d;
        critical = page_attr;
      }
    }
  }
  if (attr != nullptr) *attr = critical;
  return done;
}

void FlashMetrics::serialize(SnapshotWriter& w) const {
  w.tag("flash_metrics");
  w.u64(host_page_reads);
  w.u64(host_page_writes);
  w.u64(unmapped_reads);
  w.u64(gc_runs);
  w.u64(gc_page_moves);
  w.u64(erases);
}

void FlashMetrics::deserialize(SnapshotReader& r) {
  r.tag("flash_metrics");
  host_page_reads = r.u64();
  host_page_writes = r.u64();
  unmapped_reads = r.u64();
  gc_runs = r.u64();
  gc_page_moves = r.u64();
  erases = r.u64();
}

void Ftl::serialize(SnapshotWriter& w) const {
  w.tag("ftl");
  // Mapping tables in sorted LPN order for byte determinism.
  std::vector<Lpn> lpns;
  lpns.reserve(l2p_.size());
  for (const auto& [lpn, ppn] : l2p_) lpns.push_back(lpn);
  std::sort(lpns.begin(), lpns.end());
  w.u64(lpns.size());
  for (const Lpn lpn : lpns) {
    w.u64(lpn);
    w.u64(l2p_.at(lpn));
  }
  lpns.clear();
  for (const auto& [lpn, version] : versions_) lpns.push_back(lpn);
  std::sort(lpns.begin(), lpns.end());
  w.u64(lpns.size());
  for (const Lpn lpn : lpns) {
    w.u64(lpn);
    w.u64(versions_.at(lpn));
  }
  w.u64(preexisting_.size());
  for (const auto& [begin, end] : preexisting_) {
    w.u64(begin);
    w.u64(end);
  }
  w.u64(rr_counter_);
  w.b(degraded_mode_);
  w.u32(scrub_plane_);
  w.u32(scrub_block_);
  metrics_.serialize(w);
  w.u64(channels_.size());
  for (const auto& tl : channels_) {
    w.i64(tl.next_free());
    w.i64(tl.busy_time());
  }
  w.u64(chips_.size());
  for (const auto& tl : chips_) {
    w.i64(tl.next_free());
    w.i64(tl.busy_time());
  }
  array_.serialize(w);
}

void Ftl::deserialize(SnapshotReader& r) {
  r.tag("ftl");
  REQB_CHECK_MSG(l2p_.empty(), "deserialize into a non-fresh FTL");
  const std::uint64_t mapped = r.count(16);
  l2p_.reserve(mapped);
  for (std::uint64_t i = 0; i < mapped; ++i) {
    const Lpn lpn = r.u64();
    const Ppn ppn = r.u64();
    if (!l2p_.emplace(lpn, ppn).second) {
      throw SnapshotError("FTL snapshot repeats an L2P mapping");
    }
  }
  const std::uint64_t versioned = r.count(16);
  versions_.reserve(versioned);
  for (std::uint64_t i = 0; i < versioned; ++i) {
    const Lpn lpn = r.u64();
    const std::uint64_t version = r.u64();
    if (!versions_.emplace(lpn, version).second) {
      throw SnapshotError("FTL snapshot repeats a version entry");
    }
  }
  // The simulator re-registers pre-existing ranges at construction; the
  // checkpointed list replaces them wholesale so both paths agree.
  preexisting_.clear();
  const std::uint64_t ranges = r.count(16);
  preexisting_.reserve(ranges);
  for (std::uint64_t i = 0; i < ranges; ++i) {
    const Lpn begin = r.u64();
    const Lpn end = r.u64();
    preexisting_.emplace_back(begin, end);
  }
  rr_counter_ = r.u64();
  degraded_mode_ = r.b();
  scrub_plane_ = r.u32();
  scrub_block_ = r.u32();
  if (scrub_plane_ >= cfg_.total_planes() ||
      scrub_block_ >= cfg_.blocks_per_plane()) {
    throw SnapshotError("FTL snapshot's patrol-scrub cursor is outside "
                        "the device geometry");
  }
  metrics_.deserialize(r);
  if (r.u64() != channels_.size()) {
    throw SnapshotError("FTL snapshot has a different channel count");
  }
  for (auto& tl : channels_) {
    const SimTime next_free = r.i64();
    const SimTime busy = r.i64();
    tl.restore(next_free, busy);
  }
  if (r.u64() != chips_.size()) {
    throw SnapshotError("FTL snapshot has a different chip count");
  }
  for (auto& tl : chips_) {
    const SimTime next_free = r.i64();
    const SimTime busy = r.i64();
    tl.restore(next_free, busy);
  }
  array_.deserialize(r);
}

}  // namespace reqblock
