#include "ssd/config.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace reqblock {

std::uint64_t SsdConfig::gc_threshold_blocks() const {
  const double t = gc_free_threshold * static_cast<double>(blocks_per_plane());
  auto blocks = static_cast<std::uint64_t>(std::ceil(t));
  // Always keep at least two free blocks so GC has a destination.
  return blocks < 2 ? 2 : blocks;
}

void SsdConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("SsdConfig: " + msg);
  };
  if (channels == 0) fail("channels must be > 0");
  if (chips_per_channel == 0) fail("chips_per_channel must be > 0");
  if (planes_per_chip == 0) fail("planes_per_chip must be > 0");
  if (pages_per_block == 0) fail("pages_per_block must be > 0");
  if (page_size == 0) fail("page_size must be > 0");
  if (capacity_bytes % page_size != 0) {
    fail("capacity must be a whole number of pages");
  }
  if (total_pages() % pages_per_block != 0) {
    fail("capacity must be a whole number of blocks");
  }
  if (total_blocks() % total_planes() != 0) {
    fail("blocks must divide evenly across planes");
  }
  if (blocks_per_plane() < 8) fail("too few blocks per plane");
  if (read_latency < 0 || program_latency < 0 || erase_latency < 0 ||
      transfer_per_byte < 0 || command_overhead < 0 ||
      cache_access_latency < 0) {
    fail("latencies must be non-negative");
  }
  if (gc_free_threshold <= 0.0 || gc_free_threshold >= 0.5) {
    fail("gc_free_threshold must be in (0, 0.5)");
  }
  if (gc_threshold_blocks() >= blocks_per_plane()) {
    fail("gc threshold leaves no usable blocks");
  }
}

SsdConfig SsdConfig::paper_default() {
  SsdConfig cfg;  // defaults are Table 1 already
  cfg.validate();
  return cfg;
}

SsdConfig SsdConfig::experiment_default() {
  SsdConfig cfg;
  cfg.capacity_bytes = 32ULL << 30;
  cfg.validate();
  return cfg;
}

}  // namespace reqblock
