// Versioned, checksummed binary snapshot format (checkpoint/restore).
//
// A snapshot is a flat byte buffer produced by a SnapshotWriter and
// consumed by a SnapshotReader. The encoding is deliberately boring:
// little-endian fixed-width integers, IEEE-754 doubles by bit pattern,
// length-prefixed strings, and short named section tags that let the
// reader fail loudly ("expected section 'ftl', found 'cache'") instead of
// silently misinterpreting bytes when writer and reader drift apart.
//
// On disk a snapshot is wrapped in a container: magic + format version +
// identity hashes (config fingerprint, trace identity) + payload length +
// FNV-1a-64 checksum chained over the header prefix and the payload (v6:
// a flipped bit in any header field is a checksum mismatch, not a quietly
// corrupted hash). decode_snapshot() verifies all of it before a single
// payload byte is interpreted, and restore paths compare the identity
// hashes against the *current* run configuration — a checkpoint from a
// different policy, geometry, fault plan, or trace is refused, never
// "best-effort" loaded.
//
// Determinism contract: serializing the same logical state always produces
// the same bytes (containers with nondeterministic iteration order are
// written in sorted key order), so snapshot bytes themselves can be
// compared in tests.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace reqblock {

class LogHistogram;
class CountHistogram;
class RunningStat;
class Rng;

/// Every malformed-snapshot condition (truncation, checksum mismatch,
/// version/identity mismatch, section-tag drift) throws this.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a 64-bit over a byte range. Used for the container checksum and as
/// the building block for identity fingerprints.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Order-sensitive hash accumulator for configuration/trace identity.
/// Feed every field that defines "the same run"; the final value goes into
/// the snapshot header and is compared on restore.
class Fingerprint {
 public:
  Fingerprint& add(std::uint64_t v);
  Fingerprint& add_i64(std::int64_t v) {
    return add(static_cast<std::uint64_t>(v));
  }
  Fingerprint& add_double(double v);
  Fingerprint& add_bool(bool v) { return add(v ? 1 : 0); }
  Fingerprint& add_string(std::string_view s);
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

class SnapshotWriter {
 public:
  /// Named section marker; the reader must consume the same tag at the
  /// same position. Cheap structure validation for long payloads.
  void tag(std::string_view name);

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void b(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s);

  void vec_u64(const std::vector<std::uint64_t>& v);
  void vec_u32(const std::vector<std::uint32_t>& v);

  const std::string& buffer() const { return buffer_; }
  std::string take() { return std::move(buffer_); }

 private:
  void raw(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }
  std::string buffer_;
};

class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view data) : data_(data) {}

  /// Consumes a section tag; throws SnapshotError naming the expected and
  /// found tags on mismatch.
  void tag(std::string_view name);

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool b() { return u8() != 0; }
  std::string str();

  std::vector<std::uint64_t> vec_u64();
  std::vector<std::uint32_t> vec_u32();

  bool at_end() const { return pos_ == data_.size(); }
  /// Payload bytes not yet consumed.
  std::size_t remaining() const { return data_.size() - pos_; }
  /// Reads an element count and bounds it against the remaining payload
  /// (each element needs at least `min_item_bytes`), so a corrupt count
  /// raises SnapshotError instead of driving a huge allocation.
  std::uint64_t count(std::size_t min_item_bytes);
  /// Throws unless every payload byte was consumed — catches writer/reader
  /// drift that happens to stay in bounds.
  void expect_end() const;

 private:
  const char* need(std::size_t size);
  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// On-disk container.

// Version 2: EventKind gained the overload kinds (queue_enqueue,
// queue_timeout, bg_flush, throttle) before kPageRead, renumbering the
// flash kinds, and sessions/results carry admission-queue + SLO state.
// Version 3: EventKind gained kAttrSpan after kBlockRetire, and
// sessions/results carry the latency-attribution section.
// v4: multi-queue sessions — per-tenant blocks (pre-pulled head, trace
// cursor, admission queue, accounting), arbiter state, and the
// arbitration clock replace the single trace/queue layout.
/// v5: device aging — per-block wear state (read counters, data-age
/// stamps) in the flash array, aging counters in the fault metrics,
/// degraded-mode state in the FTL, and EventKind gained the aging kinds
/// after kAttrSpan.
/// v6: data integrity — sparse per-page corrected-error counters and
/// stripe-parity presence in the flash array, the patrol-scrub cursor in
/// the FTL, integrity counters in the fault metrics, and EventKind gained
/// the integrity kinds after kDegradedModeExit.
inline constexpr std::uint32_t kSnapshotFormatVersion = 6;

/// Identity carried alongside the payload and validated before restore.
struct SnapshotHeader {
  std::uint32_t format_version = kSnapshotFormatVersion;
  /// What the payload is ("run-checkpoint", "case-result", ...). Restore
  /// paths refuse a payload of the wrong kind.
  std::string kind;
  /// Fingerprint of the full run configuration (SsdConfig, cache options,
  /// policy config, fault plan, warmup/caps).
  std::uint64_t config_hash = 0;
  /// TraceSource::identity_hash() of the input trace.
  std::uint64_t trace_hash = 0;
  /// Progress marker (measured requests served), informational.
  std::uint64_t sequence = 0;
};

/// Wraps payload in the container (magic, version, header, checksum).
std::string encode_snapshot(const SnapshotHeader& header,
                            std::string_view payload);

/// Validates magic, format version, and checksum; fills `header` and
/// returns the payload. Throws SnapshotError on any mismatch.
std::string decode_snapshot(std::string_view file_bytes,
                            SnapshotHeader& header);

/// Writes encode_snapshot() output crash-consistently (temp file + fsync +
/// atomic rename). Throws std::runtime_error on I/O failure.
void save_snapshot_file(const std::string& path, const SnapshotHeader& header,
                        std::string_view payload);

/// Reads and decodes a snapshot file. Throws SnapshotError on malformed
/// content, std::runtime_error when the file cannot be read.
std::string load_snapshot_file(const std::string& path,
                               SnapshotHeader& header);

/// Refuses (throws SnapshotError) unless kind/config/trace identity of a
/// decoded header match what the resuming run expects. `what` names the
/// snapshot in the error message (usually the file path).
void require_snapshot_identity(const SnapshotHeader& header,
                               std::string_view kind,
                               std::uint64_t config_hash,
                               std::uint64_t trace_hash,
                               std::string_view what);

// ---------------------------------------------------------------------------
// Serializers for util value types (via their checkpoint accessors).

void serialize(SnapshotWriter& w, const LogHistogram& h);
void deserialize(SnapshotReader& r, LogHistogram& h);
void serialize(SnapshotWriter& w, const CountHistogram& h);
void deserialize(SnapshotReader& r, CountHistogram& h);
void serialize(SnapshotWriter& w, const RunningStat& s);
void deserialize(SnapshotReader& r, RunningStat& s);
void serialize(SnapshotWriter& w, const Rng& rng);
void deserialize(SnapshotReader& r, Rng& rng);

}  // namespace reqblock
