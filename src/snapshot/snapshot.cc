#include "snapshot/snapshot.h"

#include <bit>
#include <fstream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"

namespace reqblock {

namespace {

// 8-byte magic: identifies the container and its byte order in one read.
constexpr char kMagic[8] = {'R', 'Q', 'B', 'S', 'N', 'A', 'P', '1'};

void append_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.append(buf, 4);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.append(buf, 8);
}

std::uint32_t read_u32_at(std::string_view s, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(s[pos + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t read_u64_at(std::string_view s, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(s[pos + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

Fingerprint& Fingerprint::add(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  hash_ = fnv1a64(buf, sizeof(buf), hash_);
  return *this;
}

Fingerprint& Fingerprint::add_double(double v) {
  return add(std::bit_cast<std::uint64_t>(v));
}

Fingerprint& Fingerprint::add_string(std::string_view s) {
  add(s.size());
  hash_ = fnv1a64(s.data(), s.size(), hash_);
  return *this;
}

// --- SnapshotWriter --------------------------------------------------------

void SnapshotWriter::tag(std::string_view name) {
  // Tag = sentinel byte + length-prefixed name. The sentinel makes a tag
  // visually greppable in hex dumps and very unlikely to match a value the
  // reader desynchronized onto.
  u8(0xA5);
  str(name);
}

void SnapshotWriter::u16(std::uint16_t v) {
  char buf[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
  raw(buf, 2);
}

void SnapshotWriter::u32(std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  raw(buf, 4);
}

void SnapshotWriter::u64(std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  raw(buf, 8);
}

void SnapshotWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void SnapshotWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void SnapshotWriter::vec_u64(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (const auto x : v) u64(x);
}

void SnapshotWriter::vec_u32(const std::vector<std::uint32_t>& v) {
  u64(v.size());
  for (const auto x : v) u32(x);
}

// --- SnapshotReader --------------------------------------------------------

const char* SnapshotReader::need(std::size_t size) {
  if (data_.size() - pos_ < size) {
    std::ostringstream os;
    os << "snapshot payload truncated: need " << size << " bytes at offset "
       << pos_ << ", have " << (data_.size() - pos_);
    throw SnapshotError(os.str());
  }
  const char* p = data_.data() + pos_;
  pos_ += size;
  return p;
}

void SnapshotReader::tag(std::string_view name) {
  const std::size_t at = pos_;
  if (u8() != 0xA5) {
    std::ostringstream os;
    os << "snapshot section marker missing at offset " << at << " (expected '"
       << name << "'): writer/reader format drift";
    throw SnapshotError(os.str());
  }
  const std::string found = str();
  if (found != name) {
    std::ostringstream os;
    os << "snapshot section mismatch at offset " << at << ": expected '"
       << name << "', found '" << found << "'";
    throw SnapshotError(os.str());
  }
}

std::uint8_t SnapshotReader::u8() {
  return static_cast<std::uint8_t>(*need(1));
}

std::uint16_t SnapshotReader::u16() {
  const char* p = need(2);
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t SnapshotReader::u32() {
  const char* p = need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t SnapshotReader::u64() {
  const char* p = need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

double SnapshotReader::f64() { return std::bit_cast<double>(u64()); }

std::string SnapshotReader::str() {
  const std::uint32_t size = u32();
  const char* p = need(size);
  return std::string(p, size);
}

std::uint64_t SnapshotReader::count(std::size_t min_item_bytes) {
  const std::uint64_t n = u64();
  if (min_item_bytes == 0) min_item_bytes = 1;
  if (n > remaining() / min_item_bytes) {
    throw SnapshotError("snapshot element count exceeds remaining payload");
  }
  return n;
}

std::vector<std::uint64_t> SnapshotReader::vec_u64() {
  const std::uint64_t size = u64();
  // Bound before allocating: a corrupt length must not trigger a bad_alloc.
  if (size > (data_.size() - pos_) / 8) {
    throw SnapshotError("snapshot vector length exceeds remaining payload");
  }
  std::vector<std::uint64_t> v(size);
  for (auto& x : v) x = u64();
  return v;
}

std::vector<std::uint32_t> SnapshotReader::vec_u32() {
  const std::uint64_t size = u64();
  if (size > (data_.size() - pos_) / 4) {
    throw SnapshotError("snapshot vector length exceeds remaining payload");
  }
  std::vector<std::uint32_t> v(size);
  for (auto& x : v) x = u32();
  return v;
}

void SnapshotReader::expect_end() const {
  if (pos_ != data_.size()) {
    std::ostringstream os;
    os << "snapshot payload has " << (data_.size() - pos_)
       << " unread trailing bytes: writer/reader format drift";
    throw SnapshotError(os.str());
  }
}

// --- Container -------------------------------------------------------------

std::string encode_snapshot(const SnapshotHeader& header,
                            std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 96);
  out.append(kMagic, sizeof(kMagic));
  append_u32(out, header.format_version);
  append_u32(out, static_cast<std::uint32_t>(header.kind.size()));
  out.append(header.kind);
  append_u64(out, header.config_hash);
  append_u64(out, header.trace_hash);
  append_u64(out, header.sequence);
  append_u64(out, payload.size());
  // The checksum chains over the header prefix and then the payload, so
  // a bit flip anywhere in the file — kind string, identity hashes,
  // sequence, length, or data — is refused at decode, not discovered
  // later (or never) by whatever consumes the fields.
  append_u64(out, fnv1a64(payload.data(), payload.size(),
                          fnv1a64(out.data(), out.size())));
  out.append(payload);
  return out;
}

std::string decode_snapshot(std::string_view file_bytes,
                            SnapshotHeader& header) {
  std::size_t pos = 0;
  const auto need = [&](std::size_t n, const char* what) {
    if (file_bytes.size() - pos < n) {
      std::ostringstream os;
      os << "snapshot file truncated reading " << what << " (offset " << pos
         << ", need " << n << " bytes, have " << (file_bytes.size() - pos)
         << ")";
      throw SnapshotError(os.str());
    }
  };
  need(sizeof(kMagic), "magic");
  if (std::memcmp(file_bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SnapshotError("not a snapshot file (bad magic)");
  }
  pos += sizeof(kMagic);

  need(4, "format version");
  header.format_version = read_u32_at(file_bytes, pos);
  pos += 4;
  if (header.format_version != kSnapshotFormatVersion) {
    std::ostringstream os;
    os << "unsupported snapshot format version " << header.format_version
       << " (this build reads version " << kSnapshotFormatVersion << ")";
    throw SnapshotError(os.str());
  }

  need(4, "kind length");
  const std::uint32_t kind_size = read_u32_at(file_bytes, pos);
  pos += 4;
  need(kind_size, "kind");
  header.kind.assign(file_bytes.data() + pos, kind_size);
  pos += kind_size;

  need(8 * 5, "header fields");
  header.config_hash = read_u64_at(file_bytes, pos);
  pos += 8;
  header.trace_hash = read_u64_at(file_bytes, pos);
  pos += 8;
  header.sequence = read_u64_at(file_bytes, pos);
  pos += 8;
  const std::uint64_t payload_size = read_u64_at(file_bytes, pos);
  pos += 8;
  const std::uint64_t checksum = read_u64_at(file_bytes, pos);
  pos += 8;

  if (file_bytes.size() - pos != payload_size) {
    std::ostringstream os;
    os << "snapshot payload size mismatch: header says " << payload_size
       << " bytes, file has " << (file_bytes.size() - pos);
    throw SnapshotError(os.str());
  }
  // pos - 8 = everything before the stored checksum: the chained hash
  // covers the full header prefix plus the payload (see encode_snapshot).
  const std::uint64_t actual =
      fnv1a64(file_bytes.data() + pos, payload_size,
              fnv1a64(file_bytes.data(), pos - 8));
  if (actual != checksum) {
    std::ostringstream os;
    os << "snapshot checksum mismatch: stored " << std::hex << checksum
       << ", computed " << actual << " — file is corrupt";
    throw SnapshotError(os.str());
  }
  return std::string(file_bytes.substr(pos));
}

void save_snapshot_file(const std::string& path, const SnapshotHeader& header,
                        std::string_view payload) {
  write_file_atomic(path, encode_snapshot(header, payload));
}

std::string load_snapshot_file(const std::string& path,
                               SnapshotHeader& header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open snapshot file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("I/O error reading snapshot file: " + path);
  }
  try {
    return decode_snapshot(buf.view(), header);
  } catch (const SnapshotError& e) {
    throw SnapshotError(path + ": " + e.what());
  }
}

void require_snapshot_identity(const SnapshotHeader& header,
                               std::string_view kind,
                               std::uint64_t config_hash,
                               std::uint64_t trace_hash,
                               std::string_view what) {
  std::ostringstream os;
  os << std::hex;
  if (header.kind != kind) {
    os << what << ": snapshot kind mismatch: expected '" << kind
       << "', found '" << header.kind << "'";
    throw SnapshotError(os.str());
  }
  if (header.config_hash != config_hash) {
    os << what << ": snapshot was taken under a different configuration "
       << "(config fingerprint " << header.config_hash << ", this run is "
       << config_hash << "); refusing to resume";
    throw SnapshotError(os.str());
  }
  if (header.trace_hash != trace_hash) {
    os << what << ": snapshot was taken against a different trace "
       << "(trace identity " << header.trace_hash << ", this run is "
       << trace_hash << "); refusing to resume";
    throw SnapshotError(os.str());
  }
}

// --- util value-type serializers ------------------------------------------

void serialize(SnapshotWriter& w, const LogHistogram& h) {
  w.vec_u64(h.raw_buckets());
  w.u64(h.count());
  w.f64(h.raw_sum());
  w.i64(h.raw_min());
  w.i64(h.raw_max());
}

void deserialize(SnapshotReader& r, LogHistogram& h) {
  auto buckets = r.vec_u64();
  const auto count = r.u64();
  const auto sum = r.f64();
  const auto min = r.i64();
  const auto max = r.i64();
  h.restore(std::move(buckets), count, sum, min, max);
}

void serialize(SnapshotWriter& w, const CountHistogram& h) {
  w.vec_u64(h.raw_counts());
  w.u64(h.count());
  w.f64(h.raw_sum());
}

void deserialize(SnapshotReader& r, CountHistogram& h) {
  auto counts = r.vec_u64();
  const auto count = r.u64();
  const auto sum = r.f64();
  h.restore(std::move(counts), count, sum);
}

void serialize(SnapshotWriter& w, const RunningStat& s) {
  w.u64(s.count());
  w.f64(s.raw_mean());
  w.f64(s.raw_m2());
}

void deserialize(SnapshotReader& r, RunningStat& s) {
  const auto n = r.u64();
  const auto mean = r.f64();
  const auto m2 = r.f64();
  s.restore(n, mean, m2);
}

void serialize(SnapshotWriter& w, const Rng& rng) {
  const auto s = rng.state();
  for (const auto word : s) w.u64(word);
}

void deserialize(SnapshotReader& r, Rng& rng) {
  std::array<std::uint64_t, 4> s{};
  for (auto& word : s) word = r.u64();
  rng.set_state(s);
}

}  // namespace reqblock
