#include "host/tenant.h"

#include <stdexcept>
#include <string>

#include "snapshot/snapshot.h"
#include "trace/synthetic.h"
#include "util/args.h"
#include "util/strings.h"

namespace reqblock {

namespace {

/// Grows `specs` to cover index `i` (new entries default-constructed).
TenantSpec& spec_at(std::vector<TenantSpec>& specs, std::size_t i) {
  if (specs.size() <= i) specs.resize(i + 1);
  return specs[i];
}

/// Applies one comma-separated per-tenant list: `set` is called with
/// (spec, field text) for each present entry. Throws on lists longer than
/// the tenant count so a typo'd spec never silently drops.
template <typename Setter>
void apply_list(const ArgParser& args, const std::string& flag,
                std::uint32_t count, std::vector<TenantSpec>& specs,
                Setter set) {
  const auto value = args.get(flag);
  if (!value) return;
  const auto fields = split(*value, ',');
  if (fields.size() > count) {
    throw std::invalid_argument("--" + flag + " lists " +
                                std::to_string(fields.size()) +
                                " tenants but --tenants is " +
                                std::to_string(count));
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    set(spec_at(specs, i), flag, fields[i]);
  }
}

std::uint64_t parse_u64_field(const std::string& flag, std::string_view text) {
  const auto v = parse_u64(trim(text));
  if (!v) {
    throw std::invalid_argument("--" + flag + ": '" + std::string(text) +
                                "' is not an unsigned integer");
  }
  return *v;
}

double parse_double_field(const std::string& flag, std::string_view text) {
  const auto v = parse_double(trim(text));
  if (!v) {
    throw std::invalid_argument("--" + flag + ": '" + std::string(text) +
                                "' is not a number");
  }
  return *v;
}

}  // namespace

std::vector<std::uint32_t> TenantOptions::weights() const {
  std::vector<std::uint32_t> w;
  w.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) w.push_back(spec(i).weight);
  return w;
}

void TenantOptions::validate() const {
  if (count == 0) {
    throw std::invalid_argument("tenant count must be >= 1");
  }
  if (specs.size() > count) {
    throw std::invalid_argument(
        "more tenant specs (" + std::to_string(specs.size()) +
        ") than tenants (" + std::to_string(count) + ")");
  }
  if (drr_quantum_pages == 0) {
    throw std::invalid_argument("DRR quantum must be >= 1 page");
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TenantSpec& s = specs[i];
    const std::string who = "tenant " + std::to_string(i);
    if (s.weight == 0) {
      throw std::invalid_argument(who + ": weight must be >= 1");
    }
    if (s.rate <= 0.0) {
      throw std::invalid_argument(who + ": rate multiplier must be > 0");
    }
    if ((s.burst_period == 0) != (s.burst_len == 0)) {
      throw std::invalid_argument(
          who + ": burst length and period must be set together");
    }
    if (s.burst_period > 0 && s.burst_len > s.burst_period) {
      throw std::invalid_argument(who + ": burst length exceeds the period");
    }
    if (s.burst_period > 0 && s.burst_factor <= 0.0) {
      throw std::invalid_argument(who + ": burst factor must be > 0");
    }
  }
}

void TenantOptions::apply_cli(const ArgParser& args) {
  count = static_cast<std::uint32_t>(args.get_u64_strict("tenants", count));
  if (const auto v = args.get("arbiter")) arbiter = parse_arbiter_kind(*v);
  drr_quantum_pages = static_cast<std::uint32_t>(
      args.get_u64_strict("drr-quantum", drr_quantum_pages));
  apply_list(args, "tenant-weights", count, specs,
             [](TenantSpec& s, const std::string& flag, std::string_view t) {
               s.weight =
                   static_cast<std::uint32_t>(parse_u64_field(flag, t));
             });
  apply_list(args, "tenant-rates", count, specs,
             [](TenantSpec& s, const std::string& flag, std::string_view t) {
               s.rate = parse_double_field(flag, t);
             });
  apply_list(args, "tenant-burst-len", count, specs,
             [](TenantSpec& s, const std::string& flag, std::string_view t) {
               s.burst_len = parse_u64_field(flag, t);
             });
  apply_list(args, "tenant-burst-period", count, specs,
             [](TenantSpec& s, const std::string& flag, std::string_view t) {
               s.burst_period = parse_u64_field(flag, t);
             });
  apply_list(args, "tenant-burst-factor", count, specs,
             [](TenantSpec& s, const std::string& flag, std::string_view t) {
               s.burst_factor = parse_double_field(flag, t);
             });
  validate();
}

void TenantResult::serialize(SnapshotWriter& w) const {
  w.tag("tenant_result");
  w.str(name);
  w.u64(requests);
  w.u64(read_requests);
  w.u64(write_requests);
  reqblock::serialize(w, response);
  reqblock::serialize(w, queue_wait);
  overload.serialize(w);
  w.u64(attr_requests);
  for (const std::uint64_t v : attr_ns) w.u64(v);
}

void TenantResult::deserialize(SnapshotReader& r) {
  r.tag("tenant_result");
  name = r.str();
  requests = r.u64();
  read_requests = r.u64();
  write_requests = r.u64();
  reqblock::deserialize(r, response);
  reqblock::deserialize(r, queue_wait);
  overload.deserialize(r);
  attr_requests = r.u64();
  for (std::uint64_t& v : attr_ns) v = r.u64();
}

std::vector<WorkloadProfile> derive_tenant_profiles(
    const WorkloadProfile& base, const TenantOptions& tenants) {
  tenants.validate();
  std::vector<WorkloadProfile> profiles;
  profiles.reserve(tenants.count);
  for (std::uint32_t i = 0; i < tenants.count; ++i) {
    const TenantSpec s = tenants.spec(i);
    WorkloadProfile p = base;
    p.name = base.name + "#t" + std::to_string(i);
    // Tenant 0 keeps the base seed so its solo run replays the identical
    // stream; later tenants decorrelate via a fixed odd stride.
    if (i > 0) p.seed = base.seed + 0x9E3779B1ull * i;
    if (s.rate != 1.0) {
      const double gap = static_cast<double>(p.mean_interarrival_ns) / s.rate;
      p.mean_interarrival_ns = gap < 1.0 ? 1 : static_cast<SimTime>(gap);
    }
    if (s.burst_period > 0) {
      p.burst_arrival_len = s.burst_len;
      p.burst_arrival_period = s.burst_period;
      p.burst_arrival_factor = s.burst_factor;
    }
    profiles.push_back(std::move(p));
  }
  return profiles;
}

TenantStreams make_tenant_streams(const WorkloadProfile& base,
                                  const TenantOptions& tenants) {
  TenantStreams streams;
  for (WorkloadProfile& p : derive_tenant_profiles(base, tenants)) {
    streams.owned.push_back(
        std::make_unique<SyntheticTraceSource>(std::move(p)));
    streams.sources.push_back(streams.owned.back().get());
  }
  return streams;
}

}  // namespace reqblock
