// Submission-queue arbitration for the multi-queue host front end.
//
// The session keeps one submission queue per tenant and, whenever the
// device is ready for the next request, asks an Arbiter which queue's
// head to serve. The arbiter sees only the *ready* heads — queues whose
// next request has already arrived by the arbitration clock — as a list
// sorted by tenant id, and returns an index into that list. Three
// NVMe-style disciplines are provided:
//
//   round-robin (RR)           each ready queue in cyclic tenant order,
//                              one request per visit;
//   weighted round-robin (WRR) like RR, but a visited queue is served up
//                              to `weight` consecutive requests while it
//                              stays ready (credits are forfeited the
//                              moment the queue goes non-ready);
//   deficit round-robin (DRR)  byte-fair (here: page-fair) service — the
//                              cyclic pointer grants `quantum` pages of
//                              deficit per visit and a queue is served
//                              while its banked deficit covers the head
//                              request's page cost. Queues that are not
//                              ready bank nothing (their deficit resets),
//                              the classic anti-hoarding rule.
//
// Determinism contract: pick() is a pure function of the arbiter's own
// serialized state and the ready list; ties always break toward the
// lowest tenant id next in cyclic order. No RNG, no wall clock, and the
// dynamic state (cursor, credits, deficits) checkpoints byte-stably, so
// a restored arbiter continues the exact service pattern.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace reqblock {

class SnapshotReader;
class SnapshotWriter;

enum class ArbiterKind : std::uint8_t {
  kRoundRobin = 0,
  kWeighted = 1,
  kDeficit = 2,
};

constexpr const char* to_string(ArbiterKind k) {
  switch (k) {
    case ArbiterKind::kRoundRobin: return "rr";
    case ArbiterKind::kWeighted: return "wrr";
    case ArbiterKind::kDeficit: return "drr";
  }
  return "?";
}

/// Parses "rr"/"wrr"/"drr" (also "round-robin"/"weighted"/"deficit");
/// throws std::invalid_argument naming the unknown spelling.
ArbiterKind parse_arbiter_kind(std::string_view text);

/// One ready submission-queue head as the arbiter sees it.
struct ReadyHead {
  std::uint32_t tenant = 0;      // queue index; the list is sorted by this
  std::uint32_t cost_pages = 1;  // page cost of the head request (DRR)
};

class Arbiter {
 public:
  virtual ~Arbiter() = default;

  virtual ArbiterKind kind() const = 0;

  /// Chooses the queue to serve. `ready` is non-empty, strictly ascending
  /// by tenant, and every cost is >= 1. Returns an index INTO `ready`.
  /// Mutates the arbiter's scheduling state (cursor/credits/deficits).
  virtual std::size_t pick(const std::vector<ReadyHead>& ready) = 0;

  /// Checkpoints the dynamic scheduling state only (the configuration —
  /// kind, weights, quantum — is rebuilt from options by the caller).
  virtual void serialize(SnapshotWriter& w) const = 0;
  virtual void deserialize(SnapshotReader& r) = 0;
};

/// Builds an arbiter over `tenant_count` queues. `weights` must have one
/// entry (>= 1) per tenant; RR ignores them, WRR serves `weight`
/// consecutive requests per visit, DRR grants `quantum_pages * weight`
/// pages of deficit per visit. `quantum_pages` must be >= 1.
std::unique_ptr<Arbiter> make_arbiter(ArbiterKind kind,
                                      const std::vector<std::uint32_t>& weights,
                                      std::uint32_t quantum_pages);

}  // namespace reqblock
