#include "host/overload.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>

#include "snapshot/snapshot.h"
#include "util/args.h"
#include "util/check.h"

namespace reqblock {

void OverloadOptions::validate() const {
  if (bg_flush_high < 0.0 || bg_flush_high > 1.0 || bg_flush_low < 0.0 ||
      bg_flush_low > 1.0) {
    throw std::invalid_argument("bg-flush watermarks must be in [0, 1]");
  }
  if (bg_flush_high > 0.0 && bg_flush_low > bg_flush_high) {
    throw std::invalid_argument(
        "bg-flush low watermark " + std::to_string(bg_flush_low) +
        " exceeds high watermark " + std::to_string(bg_flush_high));
  }
  if (deadline_ns < 0) {
    throw std::invalid_argument("deadline must be non-negative");
  }
  if (timeout_action == TimeoutAction::kRetry && retry_backoff_ns <= 0) {
    throw std::invalid_argument("retry semantics need a positive backoff");
  }
  if (throttle && throttle_headroom_blocks == 0) {
    throw std::invalid_argument("throttle headroom must be >= 1 block");
  }
  if (throttle && throttle_max_delay_ns < 0) {
    throw std::invalid_argument("throttle delay must be non-negative");
  }
}

void OverloadOptions::apply_cli(const ArgParser& args) {
  queue_depth = static_cast<std::uint32_t>(
      args.get_u64_strict("queue-depth", queue_depth));
  const double deadline_us = args.get_double_strict(
      "deadline-us",
      static_cast<double>(deadline_ns) / static_cast<double>(kMicrosecond));
  deadline_ns = static_cast<SimTime>(
      deadline_us * static_cast<double>(kMicrosecond));
  if (args.has("queue-retries")) {
    max_retries = static_cast<std::uint32_t>(
        args.get_u64_strict("queue-retries", max_retries));
    timeout_action =
        max_retries > 0 ? TimeoutAction::kRetry : TimeoutAction::kShed;
  }
  const double backoff_us = args.get_double_strict(
      "queue-backoff-us", static_cast<double>(retry_backoff_ns) /
                              static_cast<double>(kMicrosecond));
  retry_backoff_ns = static_cast<SimTime>(
      backoff_us * static_cast<double>(kMicrosecond));
  bg_flush_high = args.get_double_strict("bg-flush-high", bg_flush_high);
  bg_flush_low = args.get_double_strict("bg-flush-low", bg_flush_low);
  if (args.has("throttle")) throttle = true;
}

std::uint64_t OverloadOptions::high_pages(
    std::uint64_t capacity_pages) const {
  return static_cast<std::uint64_t>(
      bg_flush_high * static_cast<double>(capacity_pages));
}

std::uint64_t OverloadOptions::low_pages(std::uint64_t capacity_pages) const {
  return static_cast<std::uint64_t>(
      bg_flush_low * static_cast<double>(capacity_pages));
}

SimTime OverloadOptions::throttle_delay(std::uint64_t pressure_level) const {
  if (!throttle || pressure_level == 0) return 0;
  const std::uint64_t headroom = throttle_headroom_blocks;
  const std::uint64_t level = std::min<std::uint64_t>(pressure_level,
                                                      headroom);
  return static_cast<SimTime>(
      (static_cast<std::uint64_t>(throttle_max_delay_ns) * level) / headroom);
}

void OverloadMetrics::serialize(SnapshotWriter& w) const {
  w.tag("overload_metrics");
  w.b(enabled);
  w.u64(admitted);
  w.u64(queued_waits);
  w.u64(timeouts);
  w.u64(sheds);
  w.u64(retries);
  w.u64(throttle_events);
  w.i64(throttle_delay_total);
  w.i64(queue_wait_total);
}

void OverloadMetrics::deserialize(SnapshotReader& r) {
  r.tag("overload_metrics");
  enabled = r.b();
  admitted = r.u64();
  queued_waits = r.u64();
  timeouts = r.u64();
  sheds = r.u64();
  retries = r.u64();
  throttle_events = r.u64();
  throttle_delay_total = r.i64();
  queue_wait_total = r.i64();
}

HostAdmissionQueue::HostAdmissionQueue(const OverloadOptions& options)
    : options_(options) {
  options_.validate();
  metrics_.enabled = options_.enabled();
  slots_.reserve(options_.queue_depth);
}

SimTime HostAdmissionQueue::pop_earliest() {
  const SimTime earliest = slots_.front();
  std::pop_heap(slots_.begin(), slots_.end(), std::greater<SimTime>());
  slots_.pop_back();
  return earliest;
}

HostAdmissionQueue::Admission HostAdmissionQueue::admit(SimTime arrival) {
  Admission adm;
  adm.admit_at = arrival;
  if (options_.queue_depth == 0) return adm;

  // Free the slots of commands that completed before this arrival.
  while (!slots_.empty() && slots_.front() <= arrival) pop_earliest();
  if (slots_.size() < options_.queue_depth) {
    ++metrics_.admitted;
    if (trace_ != nullptr) {
      trace_->emit({arrival, 0, 0, slots_.size() + 1,
                    EventKind::kQueueEnqueue, kTrackHost, tenant_});
    }
    return adm;
  }

  // Full: the request must wait for the earliest in-flight completion.
  // The deadline applies per attempt (NVMe-style command timeout with
  // host-driven resubmission); a backoff round re-measures the wait from
  // the new attempt time, so a retried request either squeezes under the
  // deadline as the backlog drains or exhausts its budget and is shed.
  const SimTime earliest = slots_.front();
  SimTime attempt = arrival;
  std::uint32_t rounds = 0;
  for (;;) {
    const SimTime wait = earliest > attempt ? earliest - attempt : 0;
    if (options_.deadline_ns == 0 || wait <= options_.deadline_ns) {
      pop_earliest();
      adm.admit_at = std::max(attempt, earliest);
      adm.wait = adm.admit_at - arrival;
      ++metrics_.admitted;
      if (adm.wait > 0) ++metrics_.queued_waits;
      metrics_.queue_wait_total += adm.wait;
      if (trace_ != nullptr) {
        trace_->emit({arrival, adm.wait, 0, slots_.size() + 1,
                      EventKind::kQueueEnqueue, kTrackHost, tenant_});
      }
      return adm;
    }
    ++metrics_.timeouts;
    if (trace_ != nullptr) {
      trace_->emit({attempt, wait - options_.deadline_ns, 0, rounds,
                    EventKind::kQueueTimeout, kTrackHost, tenant_});
    }
    if (options_.timeout_action != TimeoutAction::kRetry ||
        rounds >= options_.max_retries) {
      ++metrics_.sheds;
      adm.admitted = false;
      adm.admit_at = attempt;
      adm.wait = 0;
      return adm;
    }
    ++metrics_.retries;
    ++rounds;
    attempt += options_.retry_backoff_ns;
  }
}

void HostAdmissionQueue::complete(SimTime done) {
  if (options_.queue_depth == 0) return;
  REQB_CHECK_MSG(slots_.size() < options_.queue_depth,
                 "completion recorded without an admission");
  slots_.push_back(done);
  std::push_heap(slots_.begin(), slots_.end(), std::greater<SimTime>());
}

void HostAdmissionQueue::on_power_loss(SimTime at, SimTime resume_at) {
  REQB_CHECK(resume_at >= at);
  bool changed = false;
  for (SimTime& s : slots_) {
    if (s > at) {
      s = resume_at;
      changed = true;
    }
  }
  if (changed) {
    std::make_heap(slots_.begin(), slots_.end(), std::greater<SimTime>());
  }
}

void HostAdmissionQueue::note_throttle(SimTime at, SimTime delay) {
  ++metrics_.throttle_events;
  metrics_.throttle_delay_total += delay;
  if (trace_ != nullptr) {
    trace_->emit(
        {at, delay, 0, 0, EventKind::kThrottle, kTrackHost, tenant_});
  }
}

void HostAdmissionQueue::reset_metrics() {
  const bool enabled = metrics_.enabled;
  metrics_ = OverloadMetrics{};
  metrics_.enabled = enabled;
}

void HostAdmissionQueue::set_trace(TraceBuffer* trace) {
  trace_ = trace != nullptr && trace->enabled(EventCategory::kCache)
               ? trace
               : nullptr;
}

void HostAdmissionQueue::serialize(SnapshotWriter& w) const {
  w.tag("host_queue");
  std::vector<SimTime> sorted = slots_;
  std::sort(sorted.begin(), sorted.end());
  w.u64(sorted.size());
  for (const SimTime s : sorted) w.i64(s);
  metrics_.serialize(w);
}

void HostAdmissionQueue::deserialize(SnapshotReader& r) {
  r.tag("host_queue");
  const std::uint64_t in_flight = r.count(8);
  if (in_flight > options_.queue_depth) {
    throw SnapshotError("queue snapshot exceeds the configured depth");
  }
  slots_.clear();
  slots_.reserve(in_flight);
  for (std::uint64_t i = 0; i < in_flight; ++i) slots_.push_back(r.i64());
  std::make_heap(slots_.begin(), slots_.end(), std::greater<SimTime>());
  metrics_.deserialize(r);
}

}  // namespace reqblock
