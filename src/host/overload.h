// Overload protection for the host side of the simulator.
//
// Three cooperating mechanisms, each individually optional and all off by
// default (a default-constructed OverloadOptions leaves every run
// bit-identical to a build without this subsystem):
//
//   * a bounded host admission queue with per-request deadlines — a
//     request that arrives while `queue_depth` commands are in flight
//     waits for the earliest completion; if that wait exceeds the
//     deadline it is shed outright or retried after a fixed backoff,
//     depending on the timeout action, and recorded either way;
//   * watermark-driven background flushing — the CacheManager drains
//     victim batches when dirty occupancy crosses a high watermark (the
//     thresholds are derived here and carried as page counts in
//     CacheOptions);
//   * GC-pressure-aware write throttling — host writes are stretched by a
//     deterministic delay proportional to how close the fullest plane is
//     to the garbage-collection threshold.
//
// Determinism contract: no RNG anywhere. Admission decisions are a pure
// function of the option set and the completion times recorded so far,
// throttle delays use integer arithmetic only, and the queue serializes
// its in-flight slots in sorted order so equal logical state produces
// equal snapshot bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/trace_buffer.h"
#include "util/types.h"

namespace reqblock {

class ArgParser;
class SnapshotReader;
class SnapshotWriter;

/// What happens to a queued request whose wait would exceed the deadline.
enum class TimeoutAction : std::uint8_t {
  kShed = 0,   // drop immediately, count as a timeout + shed
  kRetry = 1,  // back off and re-attempt, up to max_retries, then shed
};

struct OverloadOptions {
  // --- Bounded admission queue ---------------------------------------
  /// Maximum host commands in flight; an arrival beyond this waits for a
  /// completion. 0 = unbounded (admission control off).
  std::uint32_t queue_depth = 0;
  /// Longest a request may wait for admission, per attempt. 0 = forever.
  SimTime deadline_ns = 0;
  TimeoutAction timeout_action = TimeoutAction::kShed;
  /// Backoff rounds granted before a retried request is shed.
  std::uint32_t max_retries = 3;
  /// Fixed delay before a timed-out request re-attempts admission.
  SimTime retry_backoff_ns = 500 * kMicrosecond;

  // --- Watermark background flush ------------------------------------
  /// Dirty-page fractions of cache capacity: when dirty occupancy reaches
  /// `bg_flush_high` the cache drains victim batches until it is at or
  /// below `bg_flush_low`. bg_flush_high == 0 disables.
  double bg_flush_high = 0.0;
  double bg_flush_low = 0.0;

  // --- GC-pressure throttle -------------------------------------------
  /// Stretch host writes when free blocks approach the GC threshold.
  bool throttle = false;
  /// Free blocks above the GC threshold at which throttling begins; the
  /// delay ramps linearly from 0 (at threshold + headroom) to the maximum
  /// (at the threshold itself).
  std::uint32_t throttle_headroom_blocks = 8;
  SimTime throttle_max_delay_ns = 2 * kMillisecond;

  bool queue_enabled() const { return queue_depth > 0; }
  bool bg_flush_enabled() const { return bg_flush_high > 0.0; }
  /// True when any mechanism can alter a run.
  bool enabled() const {
    return queue_enabled() || bg_flush_enabled() || throttle;
  }

  /// Throws std::invalid_argument on inconsistent settings (watermarks
  /// out of [0, 1] or inverted, zero retry backoff with kRetry, zero
  /// throttle headroom).
  void validate() const;

  /// Reads the standard CLI flags: --queue-depth, --deadline-us,
  /// --queue-retries (0 switches back to shed semantics),
  /// --queue-backoff-us, --bg-flush-high, --bg-flush-low, --throttle.
  /// Flags the parser does not carry keep their current value.
  void apply_cli(const ArgParser& args);

  /// Watermarks as page counts for a concrete cache capacity.
  std::uint64_t high_pages(std::uint64_t capacity_pages) const;
  std::uint64_t low_pages(std::uint64_t capacity_pages) const;

  /// Deterministic write stretch for a GC pressure level in
  /// [0, throttle_headroom_blocks] (see Ftl::gc_pressure_level); integer
  /// arithmetic only, so every platform computes the identical delay.
  SimTime throttle_delay(std::uint64_t pressure_level) const;
};

/// Everything the overload layer counted. Reconciled 1:1 against the
/// queue_enqueue/queue_timeout/throttle TraceEvents and the report/CSV
/// columns by the test suite. Identity: timeouts == retries + sheds.
struct OverloadMetrics {
  bool enabled = false;
  std::uint64_t admitted = 0;      // requests that entered service
  std::uint64_t queued_waits = 0;  // admissions that waited > 0 ns
  std::uint64_t timeouts = 0;      // deadline checks that failed
  std::uint64_t sheds = 0;         // requests dropped without service
  std::uint64_t retries = 0;       // backoff rounds granted
  std::uint64_t throttle_events = 0;
  SimTime throttle_delay_total = 0;
  SimTime queue_wait_total = 0;  // summed admission waits

  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);
};

/// Bounded host command queue, modeled as the completion times of the
/// admitted, still-in-flight requests (a min-heap capped at queue_depth).
/// The simulator is open-loop: arrivals come from the trace regardless of
/// backlog, so a full queue converts backlog into admission waits — and,
/// past the deadline, into recorded timeouts instead of unbounded stalls.
class HostAdmissionQueue {
 public:
  explicit HostAdmissionQueue(const OverloadOptions& options);

  struct Admission {
    bool admitted = true;
    /// When service may start (>= arrival). For a shed request, the time
    /// of the final failed attempt.
    SimTime admit_at = 0;
    SimTime wait = 0;  // admit_at - arrival; 0 when shed
  };

  /// Decides admission for a request arriving at `arrival` (non-decreasing
  /// across calls). With queue_depth == 0 this is a counted no-op that
  /// admits instantly.
  Admission admit(SimTime arrival);

  /// Records the completion time of the request just admitted and served.
  /// Call exactly once per admitted request.
  void complete(SimTime done);

  /// Power loss at `at`: in-flight commands that would have completed
  /// after `at` were cut short and re-complete when the device is back up
  /// at `resume_at`.
  void on_power_loss(SimTime at, SimTime resume_at);

  std::size_t in_flight() const { return slots_.size(); }

  const OverloadMetrics& metrics() const { return metrics_; }
  /// GC-throttle accounting (and its TraceEvent) lives with the queue so
  /// every overload counter resets, serializes, and reconciles in one
  /// place.
  void note_throttle(SimTime at, SimTime delay);
  /// Clears the counters (in-flight slots stay). Used for warmup phases.
  void reset_metrics();

  /// Keeps the trace pointer only when cache-category events are enabled
  /// (overload events ride the cache lane), mirroring CacheManager.
  void set_trace(TraceBuffer* trace);

  /// Tenant id stamped into this queue's events (TraceEvent::channel).
  /// Defaults to 0, so single-tenant runs emit the historical bytes.
  void set_tenant(std::uint16_t tenant) { tenant_ = tenant; }

  /// Checkpoint: metrics plus the in-flight completion times in sorted
  /// order (equal multiset => equal bytes, and the min-heap pop order
  /// depends only on values, so a restored queue behaves identically).
  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);

 private:
  SimTime pop_earliest();

  OverloadOptions options_;
  std::vector<SimTime> slots_;  // min-heap of in-flight completion times
  OverloadMetrics metrics_;
  TraceBuffer* trace_ = nullptr;  // non-null only when cache events are on
  std::uint16_t tenant_ = 0;      // stamped into emitted events' channel
};

}  // namespace reqblock
