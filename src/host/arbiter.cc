#include "host/arbiter.h"

#include <limits>
#include <stdexcept>

#include "snapshot/snapshot.h"
#include "util/check.h"

namespace reqblock {

namespace {

/// "Before tenant 0" cursor value: the first arbitration starts its cyclic
/// scan at the lowest tenant id.
constexpr std::uint32_t kNoCursor = std::numeric_limits<std::uint32_t>::max();

/// Index (into `ready`) of the first entry whose tenant id is strictly
/// after `cursor` in cyclic order; wraps to the lowest tenant when none is.
std::size_t next_after(const std::vector<ReadyHead>& ready,
                       std::uint32_t cursor) {
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (cursor != kNoCursor && ready[i].tenant > cursor) return i;
  }
  return 0;
}

/// Index of `tenant` in `ready`, or ready.size() when it is not ready.
std::size_t find_tenant(const std::vector<ReadyHead>& ready,
                        std::uint32_t tenant) {
  for (std::size_t i = 0; i < ready.size(); ++i) {
    if (ready[i].tenant == tenant) return i;
  }
  return ready.size();
}

class RoundRobinArbiter final : public Arbiter {
 public:
  ArbiterKind kind() const override { return ArbiterKind::kRoundRobin; }

  std::size_t pick(const std::vector<ReadyHead>& ready) override {
    const std::size_t i = next_after(ready, cursor_);
    cursor_ = ready[i].tenant;
    return i;
  }

  void serialize(SnapshotWriter& w) const override {
    w.tag("arb_rr");
    w.u64(cursor_);
  }
  void deserialize(SnapshotReader& r) override {
    r.tag("arb_rr");
    cursor_ = static_cast<std::uint32_t>(r.u64());
  }

 private:
  std::uint32_t cursor_ = kNoCursor;
};

class WeightedArbiter final : public Arbiter {
 public:
  explicit WeightedArbiter(std::vector<std::uint32_t> weights)
      : weights_(std::move(weights)) {}

  ArbiterKind kind() const override { return ArbiterKind::kWeighted; }

  std::size_t pick(const std::vector<ReadyHead>& ready) override {
    // Keep serving the current queue while it stays ready and has credit;
    // a queue that went non-ready forfeits its remaining credit (it is
    // re-granted a full weight on its next visit).
    if (cursor_ != kNoCursor && credit_ > 0) {
      const std::size_t i = find_tenant(ready, cursor_);
      if (i < ready.size()) {
        --credit_;
        return i;
      }
    }
    const std::size_t i = next_after(ready, cursor_);
    cursor_ = ready[i].tenant;
    credit_ = weights_[cursor_] - 1;
    return i;
  }

  void serialize(SnapshotWriter& w) const override {
    w.tag("arb_wrr");
    w.u64(cursor_);
    w.u64(credit_);
  }
  void deserialize(SnapshotReader& r) override {
    r.tag("arb_wrr");
    cursor_ = static_cast<std::uint32_t>(r.u64());
    credit_ = static_cast<std::uint32_t>(r.u64());
  }

 private:
  std::vector<std::uint32_t> weights_;
  std::uint32_t cursor_ = kNoCursor;
  std::uint32_t credit_ = 0;  // serves left in the current visit
};

class DeficitArbiter final : public Arbiter {
 public:
  DeficitArbiter(const std::vector<std::uint32_t>& weights,
                 std::uint32_t quantum_pages)
      : deficit_(weights.size(), 0) {
    quanta_.reserve(weights.size());
    for (const std::uint32_t w : weights) {
      quanta_.push_back(static_cast<std::uint64_t>(w) * quantum_pages);
    }
  }

  ArbiterKind kind() const override { return ArbiterKind::kDeficit; }

  std::size_t pick(const std::vector<ReadyHead>& ready) override {
    // Anti-hoarding: a queue with no ready head banks nothing across this
    // arbitration (classic DRR resets the deficit of emptied queues).
    std::size_t scan = 0;
    for (std::uint32_t t = 0; t < deficit_.size(); ++t) {
      if (scan < ready.size() && ready[scan].tenant == t) {
        ++scan;
      } else {
        deficit_[t] = 0;
      }
    }
    // The pointer stays on the current queue while its banked deficit
    // covers the head's page cost...
    if (cursor_ != kNoCursor) {
      const std::size_t i = find_tenant(ready, cursor_);
      if (i < ready.size() && deficit_[cursor_] >= ready[i].cost_pages) {
        deficit_[cursor_] -= ready[i].cost_pages;
        return i;
      }
    }
    // ...and otherwise advances cyclically, granting one quantum per
    // visit, until a visited queue can afford its head. Terminates: every
    // full cycle grows each ready queue's deficit by its quantum (>= 1).
    for (;;) {
      const std::size_t i = next_after(ready, cursor_);
      cursor_ = ready[i].tenant;
      deficit_[cursor_] += quanta_[cursor_];
      if (deficit_[cursor_] >= ready[i].cost_pages) {
        deficit_[cursor_] -= ready[i].cost_pages;
        return i;
      }
    }
  }

  void serialize(SnapshotWriter& w) const override {
    w.tag("arb_drr");
    w.u64(cursor_);
    w.u64(deficit_.size());
    for (const std::uint64_t d : deficit_) w.u64(d);
  }
  void deserialize(SnapshotReader& r) override {
    r.tag("arb_drr");
    cursor_ = static_cast<std::uint32_t>(r.u64());
    if (r.u64() != deficit_.size()) {
      throw SnapshotError("DRR snapshot has a different tenant count");
    }
    for (std::uint64_t& d : deficit_) d = r.u64();
  }

 private:
  std::vector<std::uint64_t> quanta_;   // per-tenant pages granted per visit
  std::vector<std::uint64_t> deficit_;  // banked pages, reset when non-ready
  std::uint32_t cursor_ = kNoCursor;
};

}  // namespace

ArbiterKind parse_arbiter_kind(std::string_view text) {
  if (text == "rr" || text == "round-robin") return ArbiterKind::kRoundRobin;
  if (text == "wrr" || text == "weighted") return ArbiterKind::kWeighted;
  if (text == "drr" || text == "deficit") return ArbiterKind::kDeficit;
  throw std::invalid_argument("unknown arbiter '" + std::string(text) +
                              "' (expected rr, wrr, or drr)");
}

std::unique_ptr<Arbiter> make_arbiter(ArbiterKind kind,
                                      const std::vector<std::uint32_t>& weights,
                                      std::uint32_t quantum_pages) {
  REQB_CHECK_MSG(!weights.empty(), "arbiter needs at least one queue");
  REQB_CHECK_MSG(quantum_pages >= 1, "DRR quantum must be >= 1 page");
  for (const std::uint32_t w : weights) {
    REQB_CHECK_MSG(w >= 1, "tenant weights must be >= 1");
  }
  switch (kind) {
    case ArbiterKind::kRoundRobin:
      return std::make_unique<RoundRobinArbiter>();
    case ArbiterKind::kWeighted:
      return std::make_unique<WeightedArbiter>(weights);
    case ArbiterKind::kDeficit:
      return std::make_unique<DeficitArbiter>(weights, quantum_pages);
  }
  REQB_CHECK_MSG(false, "unreachable arbiter kind");
  return nullptr;
}

}  // namespace reqblock
