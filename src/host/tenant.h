// Tenant namespaces for the multi-queue host front end.
//
// A tenant is one submission queue bound to its own slice of the logical
// address space, its own synthetic arrival stream, and its own overload /
// SLO accounting. TenantOptions describes the whole front end — how many
// queues, which arbitration discipline picks between them, and the
// per-tenant workload knobs (weight, arrival-rate multiplier, burst
// shape). The default (count == 1) leaves every run bit-identical to the
// single-stream builds: no namespace remapping, no arbitration beyond
// "serve the only queue", identical CSV bytes.
//
// Per-tenant streams derive from one base WorkloadProfile: tenant 0 keeps
// the base seed (so its solo run is directly comparable in fairness
// experiments), later tenants get decorrelated seeds, and each spec can
// scale the arrival rate or override the burst modulation — the
// noisy-neighbor scenario is "tenant 1, rate x4, burst factor x8" in one
// flag.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "host/arbiter.h"
#include "host/overload.h"
#include "telemetry/attribution.h"
#include "util/histogram.h"
#include "util/types.h"

namespace reqblock {

class ArgParser;
struct WorkloadProfile;
class SyntheticTraceSource;
class TraceSource;

/// Per-tenant workload/service knobs. Defaults describe a well-behaved
/// tenant indistinguishable from the base profile.
struct TenantSpec {
  /// Arbitration weight (WRR serves per visit, DRR quantum multiplier).
  std::uint32_t weight = 1;
  /// Arrival-rate multiplier: mean interarrival gap divided by this.
  double rate = 1.0;
  /// Burst-arrival override for this tenant's stream; burst_period == 0
  /// keeps the base profile's modulation.
  std::uint64_t burst_len = 0;
  std::uint64_t burst_period = 0;
  double burst_factor = 8.0;
};

struct TenantOptions {
  /// Submission queues / tenant namespaces. 1 = the classic single-stream
  /// front end (everything below is inert).
  std::uint32_t count = 1;
  ArbiterKind arbiter = ArbiterKind::kRoundRobin;
  /// Base DRR quantum in pages (scaled per tenant by its weight).
  std::uint32_t drr_quantum_pages = 16;
  /// Per-tenant knobs; shorter than `count` is padded with defaults.
  std::vector<TenantSpec> specs;

  bool enabled() const { return count > 1; }
  /// The effective spec of tenant `i` (specs[i] or a default).
  TenantSpec spec(std::size_t i) const {
    return i < specs.size() ? specs[i] : TenantSpec{};
  }
  /// Effective arbitration weights, one per tenant.
  std::vector<std::uint32_t> weights() const;

  /// Throws std::invalid_argument on inconsistent settings (zero count,
  /// more specs than tenants, zero weight/rate, half-open burst spec).
  void validate() const;

  /// Reads the multi-tenant CLI: --tenants N, --arbiter rr|wrr|drr,
  /// --drr-quantum PAGES, and per-tenant comma lists --tenant-weights,
  /// --tenant-rates, --tenant-burst-len, --tenant-burst-period,
  /// --tenant-burst-factor (shorter lists leave later tenants at their
  /// defaults). Flags the parser does not carry keep their current value.
  void apply_cli(const ArgParser& args);
};

/// One tenant's slice of a finished run: request counts, response and
/// queue-wait distributions, overload/SLO accounting, and (when latency
/// attribution is on) summed per-component critical-path time.
struct TenantResult {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  LogHistogram response;
  LogHistogram queue_wait;
  OverloadMetrics overload;
  std::uint64_t attr_requests = 0;
  std::array<std::uint64_t, kAttrComponents> attr_ns{};

  void serialize(SnapshotWriter& w) const;
  void deserialize(SnapshotReader& r);
};

/// Derives one WorkloadProfile per tenant from a base profile: "#tN" name
/// suffix, decorrelated seed for tenants past 0, mean interarrival gap
/// divided by the spec's rate, and per-spec burst overrides.
std::vector<WorkloadProfile> derive_tenant_profiles(
    const WorkloadProfile& base, const TenantOptions& tenants);

/// Owning bundle of per-tenant synthetic sources plus the non-owning view
/// SimulationSession consumes.
struct TenantStreams {
  std::vector<std::unique_ptr<SyntheticTraceSource>> owned;
  std::vector<TraceSource*> sources;
};

/// Builds the per-tenant trace sources for a multi-tenant run.
TenantStreams make_tenant_streams(const WorkloadProfile& base,
                                  const TenantOptions& tenants);

}  // namespace reqblock
